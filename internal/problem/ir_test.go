package problem

import (
	"math"
	"math/rand"
	"testing"
)

// evalIR computes the IR objective f(x) directly from the terms.
func evalIR(ir *IR, x []int) float64 {
	v := ir.Offset
	for i, l := range ir.Linear {
		v += l * float64(x[i])
	}
	for _, t := range ir.Terms {
		v += t.W * float64(x[t.I]) * float64(x[t.J])
	}
	return v
}

// checkCompileAgainstBruteForce asserts f(x) == H(σ(x)) + offset for
// every binary state, the compiler's defining identity.
func checkCompileAgainstBruteForce(t *testing.T, ir *IR) {
	t.Helper()
	c, err := ir.Compile()
	if err != nil {
		t.Fatal(err)
	}
	n := ir.N
	if n > 16 {
		t.Fatalf("brute force wants n <= 16, got %d", n)
	}
	x := make([]int, n)
	spins := make([]int8, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = (mask >> i) & 1
			spins[i] = int8(2*x[i] - 1)
		}
		want := evalIR(ir, x)
		got := c.Model.Energy(spins) + c.Offset
		scale := math.Max(1, math.Abs(want))
		if math.Abs(got-want) > 1e-9*scale {
			t.Fatalf("state %0*b: f(x) = %v but H+offset = %v", n, mask, want, got)
		}
	}
}

func TestCompileMatchesObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		ir := NewIR(n)
		ir.Offset = rng.NormFloat64()
		for k := 0; k < 3*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			ir.AddQuad(i, j, rng.NormFloat64())
		}
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				ir.AddLinear(i, rng.NormFloat64())
			}
		}
		checkCompileAgainstBruteForce(t, ir)
	}
}

// TestAddIsingFieldExactlyZero pins the bit-compat contract: an IR
// built purely from AddIsing calls compiles to a model with NO field —
// even under adversarial magnitude mixes where naive interleaved
// accumulation would leave a nonzero residue.
func TestAddIsingFieldExactlyZero(t *testing.T) {
	cases := [][]struct {
		i, j int
		k    float64
	}{
		{{0, 1, 1}, {1, 2, -1}, {0, 2, 0.5}},
		// Catastrophic-cancellation bait: 1e20 + 1 + tiny terms.
		{{0, 1, 1e20}, {1, 2, 1}, {0, 2, 1e-20}, {0, 1, -3}},
		{{0, 1, 0.1}, {0, 2, 0.2}, {0, 3, 0.3}, {1, 2, 0.7}, {2, 3, 1e17}},
	}
	for ci, terms := range cases {
		ir := NewIR(4)
		for _, tm := range terms {
			ir.AddIsing(tm.i, tm.j, tm.k)
		}
		c, err := ir.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if c.Model.HasField() {
			t.Fatalf("case %d: pure-Ising IR compiled with a field: %v", ci, c.Model.Field())
		}
	}
}

// TestAddIsingCouplings pins the spin-space semantics: K_ij == k.
func TestAddIsingCouplings(t *testing.T) {
	ir := NewIR(3)
	ir.AddIsing(0, 1, 2.5)
	ir.AddIsing(1, 2, -1.25)
	c, err := ir.Compile()
	if err != nil {
		t.Fatal(err)
	}
	k := c.Model.Coupling()
	if got := k.At(0, 1); got != 2.5 { //sophielint:ignore floateq power-of-two arithmetic is exact
		t.Fatalf("K[0,1] = %v, want 2.5", got)
	}
	if got := k.At(2, 1); got != -1.25 { //sophielint:ignore floateq power-of-two arithmetic is exact
		t.Fatalf("K[2,1] = %v, want -1.25", got)
	}
	if got := k.At(0, 2); got != 0 { //sophielint:ignore floateq untouched pair stays exactly zero
		t.Fatalf("K[0,2] = %v, want 0", got)
	}
}

func TestAddIsingDiagonalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on diagonal AddIsing")
		}
	}()
	NewIR(2).AddIsing(1, 1, 1)
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]*IR{
		"zero order":     NewIR(0),
		"bad term range": {N: 2, Terms: []Term{{I: 0, J: 5, W: 1}}},
		"diagonal term":  {N: 2, Terms: []Term{{I: 1, J: 1, W: 1}}},
		"reversed pair":  {N: 3, Terms: []Term{{I: 2, J: 0, W: 1}}},
		"nan weight":     {N: 2, Terms: []Term{{I: 0, J: 1, W: math.NaN()}}},
		"inf linear":     {N: 2, Linear: []float64{0, math.Inf(1)}},
		"short linear":   {N: 3, Linear: []float64{1}},
		"inf offset":     {N: 1, Offset: math.Inf(-1)},
	}
	for name, ir := range cases {
		if _, err := ir.Compile(); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

// TestCompileCSRAboveLimit pins the dense/CSR build split: above
// denseCompileLimit the model is sparse-built.
func TestCompileCSRAboveLimit(t *testing.T) {
	ir := NewIR(denseCompileLimit + 1)
	ir.AddQuad(0, denseCompileLimit, 4)
	c, err := ir.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Model.HasDense() {
		t.Fatal("model above the dense limit should be CSR-built")
	}
	small := NewIR(8)
	small.AddQuad(0, 1, 4)
	cs, err := small.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Model.HasDense() {
		t.Fatal("small model should be dense-built")
	}
}
