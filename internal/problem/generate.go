package problem

import (
	"fmt"
	"math/rand"
)

// RandomKSAT generates a planted-satisfiable random k-SAT instance:
// a hidden assignment is drawn first and every clause is resampled
// until it satisfies it, so the optimum (all clauses satisfied, weight
// = clause count) is known by construction — which makes these
// instances usable as golden decode tests and CLI demo inputs. All
// clause weights are 1. Generation is deterministic for a given seed;
// the planted assignment is returned alongside the instance.
func RandomKSAT(vars, clauses, k int, seed int64) (*MaxSAT, []int, error) {
	if vars <= 0 {
		return nil, nil, fmt.Errorf("ksat: vars %d must be positive", vars)
	}
	if k <= 0 || k > vars {
		return nil, nil, fmt.Errorf("ksat: clause width %d must be in [1, %d]", k, vars)
	}
	if clauses < 0 {
		return nil, nil, fmt.Errorf("ksat: clause count %d must be >= 0", clauses)
	}
	rng := rand.New(rand.NewSource(seed))
	planted := make([]int, vars)
	for i := range planted {
		planted[i] = rng.Intn(2)
	}
	p := &MaxSAT{Vars: vars}
	lits := make([]int, k)
	for c := 0; c < clauses; c++ {
		for {
			// Draw k distinct variables, then random polarities.
			seen := make(map[int]bool, k)
			for i := 0; i < k; i++ {
				v := rng.Intn(vars)
				for seen[v] {
					v = rng.Intn(vars)
				}
				seen[v] = true
				if rng.Intn(2) == 0 {
					lits[i] = v + 1
				} else {
					lits[i] = -(v + 1)
				}
			}
			if satisfiesPlanted(lits, planted) {
				cl := Clause{Lits: make([]int, k), Weight: 1}
				copy(cl.Lits, lits)
				p.Clauses = append(p.Clauses, cl)
				break
			}
		}
	}
	return p, planted, nil
}

func satisfiesPlanted(lits []int, planted []int) bool {
	for _, l := range lits {
		if l > 0 && planted[l-1] == 1 {
			return true
		}
		if l < 0 && planted[-l-1] == 0 {
			return true
		}
	}
	return false
}

// RandomPatterns draws p independent uniform ±1 patterns of length n
// for Hopfield storage experiments. Deterministic for a given seed.
func RandomPatterns(n, p int, seed int64) ([][]int8, error) {
	if n <= 0 || p <= 0 {
		return nil, fmt.Errorf("patterns: dimensions (%d, %d) must be positive", n, p)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int8, p)
	for mu := range out {
		pat := make([]int8, n)
		for i := range pat {
			if rng.Intn(2) == 0 {
				pat[i] = 1
			} else {
				pat[i] = -1
			}
		}
		out[mu] = pat
	}
	return out, nil
}

// CorruptPattern flips each entry of pat independently with
// probability flip, returning a fresh slice — the standard probe
// construction for recall experiments. Deterministic for a given seed.
func CorruptPattern(pat []int8, flip float64, seed int64) []int8 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int8, len(pat))
	copy(out, pat)
	for i := range out {
		if rng.Float64() < flip {
			out[i] = -out[i]
		}
	}
	return out
}
