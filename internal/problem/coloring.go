package problem

import (
	"fmt"

	"sophie/internal/graph"
)

// Coloring is graph k-coloring as a feasibility problem: assign each
// node one of Colors colors so no edge is monochromatic. One-hot
// variables x_{v,c} (index v·k + c) carry the encoding (Lucas §6.1):
//
//	H = A·Σ_v (1 − Σ_c x_{v,c})² + A·Σ_{(u,v)∈E} Σ_c x_{u,c}·x_{v,c}
//
// Both constraint families share one weight A (default 1 — the
// objective is pure feasibility, so scale is free), and a zero-energy
// state is exactly a proper coloring. The one-hot expansion has
// genuine linear terms, so this reduction exercises the model's
// external-field datapath.
type Coloring struct {
	G      *graph.Graph
	Colors int
}

// ColoringSolution is the decoded answer. Colors[v] is v's color
// (repair-decoded when one-hot is violated: an unset node takes the
// color minimizing conflicts, a multi-set node its first set color).
// Conflicts counts improper edges after decoding (the minimization
// objective; 0 = proper).
type ColoringSolution struct {
	Colors    []int `json:"colors"`
	Conflicts int   `json:"conflicts"`
}

// Type implements Problem.
func (p *Coloring) Type() string { return "coloring" }

func (p *Coloring) validate() error {
	if p.G == nil || p.G.N() == 0 {
		return fmt.Errorf("coloring: empty graph")
	}
	if p.Colors < 1 {
		return fmt.Errorf("coloring: need at least one color, got %d", p.Colors)
	}
	if p.Colors > 1<<16 {
		return fmt.Errorf("coloring: %d colors is unreasonably large", p.Colors)
	}
	return nil
}

// Lower implements Problem.
func (p *Coloring) Lower() (*IR, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n, k := p.G.N(), p.Colors
	ir := NewIR(n * k)
	idx := func(v, c int) int { return v*k + c }
	// One-hot rows: (1 − Σ_c x)² = 1 − 2Σx + Σx + 2Σ_{c<c'}x_c x_c'
	// (using x² = x): linear −1 per variable, +2 per color pair.
	for v := 0; v < n; v++ {
		for c := 0; c < k; c++ {
			ir.AddLinear(idx(v, c), -1)
			for c2 := c + 1; c2 < k; c2++ {
				ir.AddQuad(idx(v, c), idx(v, c2), 2)
			}
		}
		ir.Offset++
	}
	// Monochromatic edges.
	for _, e := range p.G.Edges() {
		for c := 0; c < k; c++ {
			ir.AddQuad(idx(e.U, c), idx(e.V, c), 1)
		}
	}
	return ir, nil
}

// Decode implements Problem: feasible iff every node had exactly one
// color set and no edge is monochromatic.
func (p *Coloring) Decode(spins []int8) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n, k := p.G.N(), p.Colors
	if err := checkSpins(spins, n*k); err != nil {
		return nil, err
	}
	colors := make([]int, n)
	var violations []string
	oneHot := true
	for v := 0; v < n; v++ {
		set := -1
		count := 0
		for c := 0; c < k; c++ {
			if spins[v*k+c] == 1 {
				count++
				if set < 0 {
					set = c
				}
			}
		}
		if count != 1 {
			oneHot = false
			violations = addViolation(violations, "node %d has %d colors set", v, count)
		}
		colors[v] = set // repaired below when unset
	}
	// Repair pass: unset nodes take the color minimizing conflicts
	// against already-decoded neighbors, so callers always get a full
	// coloring even from an infeasible spin state.
	adj := make([][]int, n)
	for _, e := range p.G.Edges() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for v := 0; v < n; v++ {
		if colors[v] >= 0 {
			continue
		}
		bestC, bestConf := 0, int(^uint(0)>>1)
		for c := 0; c < k; c++ {
			conf := 0
			for _, u := range adj[v] {
				if colors[u] == c {
					conf++
				}
			}
			if conf < bestConf {
				bestC, bestConf = c, conf
			}
		}
		colors[v] = bestC
	}
	conflicts := 0
	for _, e := range p.G.Edges() {
		if colors[e.U] == colors[e.V] {
			conflicts++
			violations = addViolation(violations, "edge (%d,%d) is monochromatic (color %d)", e.U, e.V, colors[e.U])
		}
	}
	return &Solution{
		Type:       p.Type(),
		Objective:  float64(conflicts),
		Feasible:   oneHot && conflicts == 0,
		Violations: violations,
		Assignment: &ColoringSolution{Colors: colors, Conflicts: conflicts},
	}, nil
}
