package problem

import (
	"fmt"
)

// QUBOEntry is one sparse coefficient of a QUBO objective.
type QUBOEntry struct {
	I, J int
	W    float64
}

// QUBO is the raw front end: minimize xᵀQx + Offset over x ∈ {0,1}ᴺ.
// Entries address Q freely — (i,j) and (j,i) accumulate into the same
// pair, diagonal entries are linear (x² = x) — so both upper-triangular
// and full symmetric inputs mean the same objective. Dense and sparse
// triplet JSON inputs (spec.go) both land here.
type QUBO struct {
	N       int
	Entries []QUBOEntry
	Offset  float64
}

// BitsSolution is the decoded answer of bit-vector problems (qubo):
// Bits[i] ∈ {0,1} and Value = xᵀQx + Offset, the minimization
// objective.
type BitsSolution struct {
	Bits  []int   `json:"bits"`
	Value float64 `json:"value"`
}

// Type implements Problem.
func (p *QUBO) Type() string { return "qubo" }

// Lower implements Problem.
func (p *QUBO) Lower() (*IR, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("qubo: order %d must be positive", p.N)
	}
	ir := NewIR(p.N)
	ir.Offset = p.Offset
	for k, e := range p.Entries {
		if e.I < 0 || e.I >= p.N || e.J < 0 || e.J >= p.N {
			return nil, fmt.Errorf("qubo: entry %d addresses (%d,%d) outside order %d", k, e.I, e.J, p.N)
		}
		if !isFinite(e.W) {
			return nil, fmt.Errorf("qubo: entry %d at (%d,%d) has value %v", k, e.I, e.J, e.W)
		}
		ir.AddQuad(e.I, e.J, e.W)
	}
	return ir, nil
}

// Value evaluates xᵀQx + Offset for a 0/1 assignment.
func (p *QUBO) Value(bits []int) float64 {
	v := p.Offset
	for _, e := range p.Entries {
		if e.I == e.J {
			if bits[e.I] != 0 {
				v += e.W
			}
			continue
		}
		if bits[e.I] != 0 && bits[e.J] != 0 {
			v += e.W
		}
	}
	return v
}

// Decode implements Problem. A QUBO is unconstrained, so every bit
// vector is feasible.
func (p *QUBO) Decode(spins []int8) (*Solution, error) {
	if err := checkSpins(spins, p.N); err != nil {
		return nil, err
	}
	bits := make([]int, p.N)
	for i := 0; i < p.N; i++ {
		if spins[i] == 1 {
			bits[i] = 1
		}
	}
	value := p.Value(bits)
	return &Solution{
		Type:       p.Type(),
		Objective:  value,
		Feasible:   true,
		Assignment: &BitsSolution{Bits: bits, Value: value},
	}, nil
}
