package problem

import (
	"errors"
	"strings"
	"testing"
)

// TestParseSpecRoundTrips parses one representative document per
// problem type and checks the front end it builds.
func TestParseSpecRoundTrips(t *testing.T) {
	cases := []struct {
		spec string
		typ  string
	}{
		{`{"type":"qubo","n":3,"entries":[[0,1,-2],[1,1,0.5]],"offset":1}`, "qubo"},
		{`{"type":"maxcut","graph":{"n":3,"edges":[[0,1,1],[1,2,2]]}}`, "maxcut"},
		{`{"type":"maxsat","vars":3,"clauses":[{"lits":[1,-2]},{"lits":[2,3],"weight":2}]}`, "maxsat"},
		{`{"type":"partition","graph":{"n":4,"edges":[[0,1,1],[2,3,1]]}}`, "partition"},
		{`{"type":"coloring","graph":{"n":3,"edges":[[0,1,1]]},"colors":2}`, "coloring"},
		{`{"type":"numberpartition","numbers":[4,5,6,7,8]}`, "numberpartition"},
		{`{"type":"tsp","dist":[[0,1,2],[1,0,1],[2,1,0]]}`, "tsp"},
		{`{"type":"hopfield","patterns":[[1,-1,1,-1]],"probe":[1,1,1,-1]}`, "hopfield"},
	}
	for _, c := range cases {
		p, err := ParseSpec([]byte(c.spec))
		if err != nil {
			t.Errorf("%s: %v", c.typ, err)
			continue
		}
		if p.Type() != c.typ {
			t.Errorf("parsed type %q, want %q", p.Type(), c.typ)
			continue
		}
		if _, err := Compile(p); err != nil {
			t.Errorf("%s: compile: %v", c.typ, err)
		}
	}
}

// TestParseSpecErrorMatrix pins the structured-rejection contract: each
// malformed document fails with a *SpecError carrying the documented
// Field path and Reason label (the service's 400 body and the
// sophied_spec_rejects_total metric both key on these).
func TestParseSpecErrorMatrix(t *testing.T) {
	cases := []struct {
		name   string
		spec   string
		field  string
		reason string
	}{
		{"empty", ``, "problem", "empty"},
		{"truncated json", `{"type":"qubo"`, "problem", "bad_json"},
		{"not an object", `[1,2,3]`, "problem", "bad_json"},
		{"unknown field", `{"type":"qubo","n":2,"bogus":1}`, "problem", "bad_json"},
		{"missing type", `{"n":3}`, "problem.type", "missing_type"},
		{"unknown type", `{"type":"sudoku"}`, "problem.type", "unknown_type"},
		{"qubo zero order", `{"type":"qubo","n":0}`, "problem.n", "bad_order"},
		{"qubo fractional index", `{"type":"qubo","n":2,"entries":[[0.5,1,1]]}`, "problem.entries[0]", "bad_index"},
		{"maxcut no graph", `{"type":"maxcut"}`, "problem.graph", "missing_graph"},
		{"graph zero order", `{"type":"maxcut","graph":{"n":0}}`, "problem.graph.n", "bad_order"},
		{"graph fractional endpoint", `{"type":"maxcut","graph":{"n":3,"edges":[[0,1.5,1]]}}`, "problem.graph.edges[0]", "bad_edge"},
		{"graph endpoint out of range", `{"type":"maxcut","graph":{"n":3,"edges":[[0,7,1]]}}`, "problem.graph.edges[0]", "bad_edge"},
		{"graph self-loop", `{"type":"partition","graph":{"n":3,"edges":[[1,1,1]]}}`, "problem.graph.edges[0]", "bad_edge"},
		{"coloring blowup", `{"type":"coloring","graph":{"n":3000,"edges":[]},"colors":3000}`, "problem.colors", "too_large"},
		{"tsp blowup", `{"type":"tsp","dist":[]}`, "", "skip"}, // empty dist parses; Lower rejects it
	}
	for _, c := range cases {
		if c.reason == "skip" {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(c.spec))
			if err == nil {
				t.Fatal("want error")
			}
			var serr *SpecError
			if !errors.As(err, &serr) {
				t.Fatalf("error %T is not a *SpecError: %v", err, err)
			}
			if serr.Field != c.field {
				t.Errorf("field %q, want %q", serr.Field, c.field)
			}
			if serr.Reason != c.reason {
				t.Errorf("reason %q, want %q", serr.Reason, c.reason)
			}
			if serr.Msg == "" || !strings.Contains(serr.Error(), serr.Msg) {
				t.Errorf("unhelpful message: %q", serr.Error())
			}
		})
	}
}

// TestParseSpecWeightDefaults: omitted clause weights become 1, stated
// ones are kept.
func TestParseSpecWeightDefaults(t *testing.T) {
	p, err := ParseSpec([]byte(`{"type":"maxsat","vars":2,"clauses":[{"lits":[1]},{"lits":[2],"weight":2.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	m := p.(*MaxSAT)
	if m.Clauses[0].Weight != 1 { //sophielint:ignore floateq parser writes the literal 1
		t.Fatalf("default weight %v, want 1", m.Clauses[0].Weight)
	}
	if m.Clauses[1].Weight != 2.5 { //sophielint:ignore floateq parser passes the literal through
		t.Fatalf("explicit weight %v, want 2.5", m.Clauses[1].Weight)
	}
}

// TestSpecSemanticErrorsSurfaceAtLower: documents that pass shape
// validation but fail domain validation (ParseSpec's documented split)
// error in Lower with a useful message.
func TestSpecSemanticErrorsSurfaceAtLower(t *testing.T) {
	cases := map[string]string{
		"maxsat zero literal":  `{"type":"maxsat","vars":2,"clauses":[{"lits":[0]}]}`,
		"maxsat var range":     `{"type":"maxsat","vars":2,"clauses":[{"lits":[5]}]}`,
		"tsp ragged matrix":    `{"type":"tsp","dist":[[0,1],[1,0,2]]}`,
		"tsp negative length":  `{"type":"tsp","dist":[[0,-1],[-1,0]]}`,
		"coloring zero colors": `{"type":"coloring","graph":{"n":2,"edges":[]},"colors":0}`,
		"hopfield no patterns": `{"type":"hopfield"}`,
		"hopfield bad spin":    `{"type":"hopfield","patterns":[[1,0,-1]]}`,
		"numberpartition none": `{"type":"numberpartition","numbers":[]}`,
	}
	for name, spec := range cases {
		t.Run(name, func(t *testing.T) {
			p, err := ParseSpec([]byte(spec))
			if err != nil {
				t.Fatalf("spec should parse (shape is fine): %v", err)
			}
			if _, err := p.Lower(); err == nil {
				t.Fatal("want Lower error")
			}
		})
	}
}
