package problem

import (
	"fmt"
)

// TSP is the (symmetric) traveling-salesman front end over a full
// distance matrix: find a cyclic tour visiting every city once with
// minimum total distance. The permutation-matrix encoding (Lucas §7.2)
// uses n² one-hot variables x_{v,p} (index v·n + p, "city v at tour
// position p"):
//
//	H = A·Σ_v (1−Σ_p x_{v,p})² + A·Σ_p (1−Σ_v x_{v,p})²
//	  + Σ_{u≠v} d_{uv} Σ_p x_{u,p}·x_{v,p+1}   (positions cyclic mod n)
//
// The penalty A must exceed any distance a constraint violation could
// save; breaking one-hotness removes at most two tour edges, so
// A = 1 + 2·d_max suffices (DESIGN.md "Problem compiler", penalty
// rule 3). PenaltyWeight 0 selects that default. The one-hot rows give
// the compiled model a genuine external field.
type TSP struct {
	// Dist is the n×n distance matrix; Dist[u][v] is the cost of the
	// tour edge u→v. It must be square with a zero diagonal and
	// non-negative entries; asymmetric matrices are accepted (the
	// position chain is directed).
	Dist [][]float64
	// PenaltyWeight overrides the one-hot penalty A; 0 picks the
	// default 1 + 2·max(Dist).
	PenaltyWeight float64
}

// TourSolution is the decoded answer: Tour[p] is the city at position
// p (repair-decoded when the permutation constraints are violated),
// Length its cyclic length under Dist (the minimization objective).
type TourSolution struct {
	Tour   []int   `json:"tour"`
	Length float64 `json:"length"`
}

// Type implements Problem.
func (p *TSP) Type() string { return "tsp" }

func (p *TSP) validate() error {
	n := len(p.Dist)
	if n == 0 {
		return fmt.Errorf("tsp: empty distance matrix")
	}
	for u, row := range p.Dist {
		if len(row) != n {
			return fmt.Errorf("tsp: row %d has %d entries, want %d", u, len(row), n)
		}
		for v, d := range row {
			if !isFinite(d) || d < 0 {
				return fmt.Errorf("tsp: dist[%d][%d] = %v, want finite and >= 0", u, v, d)
			}
			if u == v && d != 0 { //sophielint:ignore floateq diagonal must be exactly zero
				return fmt.Errorf("tsp: dist[%d][%d] = %v, diagonal must be zero", u, v, d)
			}
		}
	}
	if p.PenaltyWeight < 0 || !isFinite(p.PenaltyWeight) {
		return fmt.Errorf("tsp: penalty weight %v must be >= 0 and finite", p.PenaltyWeight)
	}
	return nil
}

// penaltyWeight resolves the one-hot penalty A.
func (p *TSP) penaltyWeight() float64 {
	if p.PenaltyWeight > 0 {
		return p.PenaltyWeight
	}
	maxD := 0.0
	for _, row := range p.Dist {
		for _, d := range row {
			if d > maxD {
				maxD = d
			}
		}
	}
	return 1 + 2*maxD
}

// Lower implements Problem.
func (p *TSP) Lower() (*IR, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(p.Dist)
	a := p.penaltyWeight()
	ir := NewIR(n * n)
	idx := func(v, pos int) int { return v*n + pos }
	// One-hot per city (each city has exactly one position) and per
	// position (each position holds exactly one city); same expansion
	// as Coloring: (1−Σx)² → −x per variable, +2x·x' per pair, +1.
	for v := 0; v < n; v++ {
		for q := 0; q < n; q++ {
			ir.AddLinear(idx(v, q), -a)
			for q2 := q + 1; q2 < n; q2++ {
				ir.AddQuad(idx(v, q), idx(v, q2), 2*a)
			}
		}
		ir.Offset += a
	}
	for q := 0; q < n; q++ {
		for v := 0; v < n; v++ {
			for v2 := v + 1; v2 < n; v2++ {
				ir.AddQuad(idx(v, q), idx(v2, q), 2*a)
			}
		}
		ir.Offset += a
	}
	// Tour length: d_{uv}·x_{u,p}·x_{v,p+1}, positions cyclic.
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || p.Dist[u][v] == 0 { //sophielint:ignore floateq zero distances contribute nothing
				continue
			}
			for q := 0; q < n; q++ {
				ir.AddQuad(idx(u, q), idx(v, (q+1)%n), p.Dist[u][v])
			}
		}
	}
	return ir, nil
}

// Decode implements Problem: feasible iff the spins encode an exact
// permutation matrix. Repair assigns leftover positions to leftover
// cities in index order so callers always get a full tour.
func (p *TSP) Decode(spins []int8) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(p.Dist)
	if err := checkSpins(spins, n*n); err != nil {
		return nil, err
	}
	tour := make([]int, n) // tour[pos] = city, -1 while unresolved
	for q := range tour {
		tour[q] = -1
	}
	used := make([]bool, n)
	var violations []string
	exact := true
	for q := 0; q < n; q++ {
		count := 0
		for v := 0; v < n; v++ {
			if spins[v*n+q] == 1 {
				count++
				if tour[q] < 0 && !used[v] {
					tour[q] = v
					used[v] = true
				}
			}
		}
		if count != 1 {
			exact = false
			violations = addViolation(violations, "position %d holds %d cities", q, count)
		}
	}
	for v := 0; v < n; v++ {
		count := 0
		for q := 0; q < n; q++ {
			if spins[v*n+q] == 1 {
				count++
			}
		}
		if count != 1 {
			exact = false
			violations = addViolation(violations, "city %d appears %d times", v, count)
		}
	}
	// Repair: fill unresolved positions with unused cities in order.
	next := 0
	for q := 0; q < n; q++ {
		if tour[q] >= 0 {
			continue
		}
		for used[next] {
			next++
		}
		tour[q] = next
		used[next] = true
	}
	length := 0.0
	for q := 0; q < n; q++ {
		length += p.Dist[tour[q]][tour[(q+1)%n]]
	}
	return &Solution{
		Type:       p.Type(),
		Objective:  length,
		Feasible:   exact,
		Violations: violations,
		Assignment: &TourSolution{Tour: tour, Length: length},
	}, nil
}
