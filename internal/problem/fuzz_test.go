package problem

import (
	"errors"
	"strings"
	"testing"
)

// FuzzProblemSpec drives hostile documents through the full front-end
// pipeline: ParseSpec must never panic and must fail only with
// *SpecError; specs that parse must Lower/Compile without panicking,
// and small compiled models must round-trip a decode. The seed corpus
// mixes one valid document per type with the classic JSON attack
// shapes (deep nesting, huge counts, NaN/Inf smuggling, duplicate
// keys, wrong-typed fields).
func FuzzProblemSpec(f *testing.F) {
	seeds := []string{
		// One valid document per type.
		`{"type":"qubo","n":3,"entries":[[0,1,-2],[1,1,0.5]],"offset":1}`,
		`{"type":"maxcut","graph":{"n":3,"edges":[[0,1,1],[1,2,2]]}}`,
		`{"type":"maxsat","vars":3,"clauses":[{"lits":[1,-2]},{"lits":[-1,2,3],"weight":2}]}`,
		`{"type":"partition","graph":{"n":4,"edges":[[0,1,1],[2,3,1]]},"balance_weight":2}`,
		`{"type":"coloring","graph":{"n":3,"edges":[[0,1,1]]},"colors":2}`,
		`{"type":"numberpartition","numbers":[4,5,6,7,8]}`,
		`{"type":"tsp","dist":[[0,1,2],[1,0,1],[2,1,0]],"penalty_weight":5}`,
		`{"type":"hopfield","patterns":[[1,-1,1,-1]],"probe":[1,1,1,-1]}`,
		// Hostile shapes.
		``,
		`null`,
		`{}`,
		`[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]`,
		`{"type":"qubo","n":9999999999999999999}`,
		`{"type":"qubo","n":4194304,"entries":[]}`,
		`{"type":"qubo","n":2,"entries":[[0,1,1e309]]}`,
		`{"type":"qubo","n":2,"entries":[[NaN,1,1]]}`,
		`{"type":"maxcut","graph":{"n":-1}}`,
		`{"type":"maxcut","graph":{"n":3,"edges":[[0,1,1],[0,1,1],[1,0,2]]}}`,
		`{"type":"maxsat","vars":1,"clauses":[{"lits":[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1]}]}`,
		`{"type":"maxsat","vars":-5,"clauses":[{"lits":[-9223372036854775808]}]}`,
		`{"type":"coloring","graph":{"n":2048,"edges":[]},"colors":2048}`,
		`{"type":"tsp","dist":[[0]]}`,
		`{"type":"tsp","dist":[[0,1],[1,0],[2,2]]}`,
		`{"type":"hopfield","patterns":[[1],[1,-1]],"probe":[127]}`,
		`{"type":"numberpartition","numbers":[1e308,1e308,-1e308]}`,
		`{"type":"qubo","type":"maxcut","n":2}`,
		`{"type":"qubo","n":1}`,
		`{"type":"qubo","n":2,"entries":[[0,1,1],[0,1,"x"]]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseSpec(data)
		if err != nil {
			var serr *SpecError
			if !errors.As(err, &serr) {
				t.Fatalf("ParseSpec error %T is not a *SpecError: %v", err, err)
			}
			if serr.Reason == "" || serr.Msg == "" {
				t.Fatalf("SpecError missing reason/message: %+v", serr)
			}
			return
		}
		if p.Type() == "" || !knownType(p.Type()) {
			t.Fatalf("parsed problem reports unknown type %q", p.Type())
		}
		// The production budgets allow specs lowering to tens of millions
		// of terms; per-exec that would turn the fuzzer into a memory
		// benchmark, so skip anything estimated past a test-sized bound
		// BEFORE Lower allocates.
		if estimateLowered(p) > 1<<16 {
			return
		}
		ir, err := p.Lower()
		if err != nil {
			return // semantic rejection is fine; panics are not
		}
		if ir.N > 512 || len(ir.Terms) > 1<<16 {
			return
		}
		c, err := ir.Compile()
		if err != nil {
			return
		}
		spins := make([]int8, c.Model.N())
		for i := range spins {
			if i%3 == 0 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		sol, err := p.Decode(spins)
		if err != nil {
			// Decode may reject only on spin-count mismatch, which cannot
			// happen for the model's own order.
			t.Fatalf("Decode rejected the compiled model's own spin vector: %v", err)
		}
		if sol.Type != p.Type() {
			t.Fatalf("solution type %q for problem %q", sol.Type, p.Type())
		}
	})
}

// estimateLowered upper-bounds the lowered term count from the
// declared sizes, without lowering — mirrors ParseSpec's maxSpecTerms
// estimates at fuzz-exec scale.
func estimateLowered(p Problem) int64 {
	switch q := p.(type) {
	case *QUBO:
		return int64(q.N) + int64(len(q.Entries))
	case *MaxCut:
		return int64(q.G.N()) + int64(len(q.G.Edges()))
	case *MaxSAT:
		total := int64(q.Vars)
		for _, c := range q.Clauses {
			total += int64(len(c.Lits)) * 4 // each chained gate emits a handful of terms
		}
		return total
	case *Partition:
		n := int64(q.G.N())
		return n * n / 2
	case *Coloring:
		n, k := int64(q.G.N()), int64(q.Colors)
		if k <= 0 {
			return n
		}
		return n*k*k/2 + int64(len(q.G.Edges()))*k
	case *NumberPartition:
		n := int64(len(q.Numbers))
		return n * n / 2
	case *TSP:
		n := int64(len(q.Dist))
		return n * n * n
	case *Hopfield:
		if len(q.Patterns) == 0 {
			return 0
		}
		n := int64(len(q.Patterns[0]))
		return n * n / 2 * int64(len(q.Patterns)) // Hebbian sum: n²/2 pairs × p patterns
	default:
		return 1 << 62 // unknown type: never lower it in the fuzzer
	}
}

func knownType(typ string) bool {
	for _, k := range SpecTypes() {
		if k == typ {
			return true
		}
	}
	return false
}

// TestFuzzSeedsSmoke replays the fuzz logic over the seed corpus in a
// plain test, so `go test` exercises the hostile documents even when
// no fuzz engine runs (the CI fuzz-smoke leg then runs the real
// mutator for a bounded time).
func TestFuzzSeedsSmoke(t *testing.T) {
	hostile := []string{
		``, `null`, `{}`, `x`, strings.Repeat("[", 64) + strings.Repeat("]", 64),
		`{"type":"qubo","n":9999999999999999999}`,
		`{"type":"maxsat","vars":-5,"clauses":[{"lits":[0]}]}`,
		`{"type":"hopfield","patterns":[[1],[1,-1]],"probe":[127]}`,
	}
	for _, s := range hostile {
		p, err := ParseSpec([]byte(s))
		if err != nil {
			var serr *SpecError
			if !errors.As(err, &serr) {
				t.Fatalf("%q: error %T is not a *SpecError", s, err)
			}
			continue
		}
		if _, err := p.Lower(); err == nil {
			if _, err := Compile(p); err != nil {
				t.Fatalf("%q: lowered but did not compile: %v", s, err)
			}
		}
	}
}
