package graph

import (
	"fmt"
	"math/rand"
)

// PlantedPartition generates a two-community stochastic block model: n
// nodes split into two planted halves (sizes ⌈n/2⌉ and ⌊n/2⌋), each
// intra-community pair connected with probability pIn and each
// cross-community pair with probability pOut, all edges weight 1. With
// pIn > pOut the planted split is the likely optimum of the balanced
// partition objective, which makes these instances ground-truthed
// benchmarks for the partition reduction. The returned sides slice is
// the planted assignment (sides[v] ∈ {0,1}). Generation is
// deterministic for a given seed.
func PlantedPartition(n int, pIn, pOut float64, seed int64) (*Graph, []int, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("graph: planted partition needs n >= 2, got %d", n)
	}
	if pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		return nil, nil, fmt.Errorf("graph: planted partition probabilities (%v, %v) must be in [0,1]", pIn, pOut)
	}
	g := New(n)
	sides := make([]int, n)
	half := (n + 1) / 2
	for v := half; v < n; v++ {
		sides[v] = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if sides[u] == sides[v] {
				p = pIn
			}
			if rng.Float64() < p {
				if err := g.AddEdge(u, v, 1); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return g, sides, nil
}
