package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndBasics(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("fresh graph: N=%d M=%d", g.N(), g.M())
	}
	if err := g.AddEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(3, 2, -1); err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M=%d, want 2", g.M())
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("edges must be undirected")
	}
	if g.Weight(2, 3) != -1 {
		t.Fatalf("Weight(2,3)=%v", g.Weight(2, 3))
	}
	if g.Weight(0, 3) != 0 {
		t.Fatal("absent edge must have weight 0")
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self-loop must be rejected")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Fatal("out-of-range edge must be rejected")
	}
	if err := g.AddEdge(-1, 1, 1); err == nil {
		t.Fatal("negative node must be rejected")
	}
}

func TestAddEdgeOverwriteAndRemove(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.Weight(0, 1) != 5 {
		t.Fatalf("overwrite failed: M=%d w=%v", g.M(), g.Weight(0, 1))
	}
	if err := g.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	// Zero weight removes.
	if err := g.AddEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.HasEdge(0, 1) {
		t.Fatal("zero-weight overwrite must remove the edge")
	}
	if g.Weight(1, 2) != 3 {
		t.Fatal("removal corrupted the remaining edge")
	}
	// Adding a brand-new zero-weight edge is a no-op.
	if err := g.AddEdge(0, 2, 0); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 2) {
		t.Fatal("zero-weight insert must be a no-op")
	}
}

func TestDegreesAndDensity(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	deg := g.Degrees()
	if deg[0] != 3 || deg[1] != 1 {
		t.Fatalf("degrees %v", deg)
	}
	if got := g.Density(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("density %v, want 0.5", got)
	}
	if New(1).Density() != 0 {
		t.Fatal("density of trivial graph must be 0")
	}
}

func TestAdjacencyAndCouplingMatrices(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, -3)
	a := g.AdjacencyMatrix()
	if a.At(0, 1) != 2 || a.At(1, 0) != 2 || a.At(2, 1) != -3 || a.At(0, 2) != 0 {
		t.Fatalf("adjacency wrong: %v", a.Data())
	}
	k := g.CouplingMatrix()
	if k.At(0, 1) != -2 || k.At(1, 2) != 3 {
		t.Fatal("coupling must be negated adjacency")
	}
}

func TestCutValue(t *testing.T) {
	// Triangle with unit weights: best cut is 2.
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	if got := g.CutValue([]int8{1, -1, 1}); got != 2 {
		t.Fatalf("cut %v, want 2", got)
	}
	if got := g.CutValue([]int8{1, 1, 1}); got != 0 {
		t.Fatalf("uncut %v, want 0", got)
	}
}

func TestCutValuePanics(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	for _, spins := range [][]int8{{1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for spins %v", spins)
				}
			}()
			g.CutValue(spins)
		}()
	}
}

// Property: cut = (TotalWeight - IsingEnergy)/2 for random graphs/spins.
func TestCutEnergyDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		m := rng.Intn(n * (n - 1) / 2)
		g, err := Random(n, m, WeightUniform, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		spins := make([]int8, n)
		for i := range spins {
			if rng.Intn(2) == 0 {
				spins[i] = -1
			} else {
				spins[i] = 1
			}
		}
		cut := g.CutValue(spins)
		want := (g.TotalWeight() - g.IsingEnergy(spins)) / 2
		if math.Abs(cut-want) > 1e-9 {
			t.Fatalf("duality violated: cut=%v, (W-H)/2=%v", cut, want)
		}
	}
}

func TestRandomGenerator(t *testing.T) {
	g, err := Random(50, 100, WeightPM1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 50 || g.M() != 100 {
		t.Fatalf("got %d nodes %d edges", g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if e.Weight != 1 && e.Weight != -1 {
			t.Fatalf("pm1 weight %v", e.Weight)
		}
		if e.U >= e.V {
			t.Fatalf("edge not normalized: %+v", e)
		}
	}
}

func TestRandomGeneratorDense(t *testing.T) {
	// Forces the dense enumeration path (m > 40% of max).
	g, err := Random(10, 40, WeightUnit, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 40 {
		t.Fatalf("M=%d, want 40", g.M())
	}
}

func TestRandomGeneratorErrors(t *testing.T) {
	if _, err := Random(4, 100, WeightUnit, 1); err == nil {
		t.Fatal("expected too-many-edges error")
	}
	if _, err := Random(4, -1, WeightUnit, 1); err == nil {
		t.Fatal("expected negative-edge-count error")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, _ := Random(30, 60, WeightPM1, 77)
	b, _ := Random(30, 60, WeightPM1, 77)
	ea, eb := a.SortedEdges(), b.SortedEdges()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("nondeterministic edge %d: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(10, WeightPM1, 3)
	if g.M() != 45 {
		t.Fatalf("K10 has %d edges, want 45", g.M())
	}
	for _, e := range g.Edges() {
		if e.Weight == 0 {
			t.Fatal("K-graph edges must have nonzero weight")
		}
	}
}

func TestToroidal(t *testing.T) {
	g := Toroidal(4, 3, 5)
	if g.N() != 12 {
		t.Fatalf("N=%d, want 12", g.N())
	}
	// Each node has degree 4 on a torus with w,h >= 3.
	for i, d := range g.Degrees() {
		if d != 4 {
			t.Fatalf("node %d degree %d, want 4", i, d)
		}
	}
}

func TestStandins(t *testing.T) {
	g1 := G1Standin()
	if g1.N() != 800 || g1.M() != 19176 {
		t.Fatalf("G1 stand-in %d nodes %d edges", g1.N(), g1.M())
	}
	g22 := G22Standin()
	if g22.N() != 2000 || g22.M() != 19990 {
		t.Fatalf("G22 stand-in %d nodes %d edges", g22.N(), g22.M())
	}
	k := KGraph(100)
	if k.N() != 100 || k.M() != 100*99/2 {
		t.Fatalf("K100 %d nodes %d edges", k.N(), k.M())
	}
}

func TestTableI(t *testing.T) {
	insts := TableI()
	if len(insts) != 5 {
		t.Fatalf("Table I has %d instances, want 5", len(insts))
	}
	wantNodes := map[string]int{"G1": 800, "G22": 2000, "K100": 100, "K16384": 16384, "K32768": 32768}
	for _, inst := range insts {
		if wantNodes[inst.Name] != inst.Nodes {
			t.Fatalf("instance %s has %d nodes", inst.Name, inst.Nodes)
		}
	}
	// Only materialize the small ones.
	for _, inst := range insts {
		if inst.Nodes <= 2000 {
			g := inst.Build()
			if g.N() != inst.Nodes {
				t.Fatalf("%s built with %d nodes", inst.Name, g.N())
			}
		}
	}
}

func TestWeightSchemeString(t *testing.T) {
	if WeightUnit.String() != "unit" || WeightPM1.String() != "pm1" ||
		WeightUniform.String() != "uniform" {
		t.Fatal("weight scheme names wrong")
	}
	if WeightScheme(99).String() == "" {
		t.Fatal("unknown scheme must still render")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.AddEdge(1, 2, 1)
	if g.M() != 1 || c.M() != 2 {
		t.Fatal("clone must be independent")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost an edge")
	}
}

// Property: generated graphs never contain self-loops or duplicates.
func TestGeneratorInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int(uint64(seed)%30)
		m := int(uint64(seed) % uint64(n))
		g, err := Random(n, m, WeightPM1, seed)
		if err != nil {
			return false
		}
		seen := map[[2]int]bool{}
		for _, e := range g.Edges() {
			if e.U == e.V || e.U < 0 || e.V >= n {
				return false
			}
			k := [2]int{e.U, e.V}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return g.M() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCouplingCSRMatchesDense(t *testing.T) {
	g, err := Random(30, 90, WeightUniform, 12)
	if err != nil {
		t.Fatal(err)
	}
	dense := g.CouplingMatrix()
	sparse := g.CouplingCSR()
	if sparse.Order() != 30 {
		t.Fatalf("CSR order %d", sparse.Order())
	}
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if sparse.At(i, j) != dense.At(i, j) {
				t.Fatalf("CSR(%d,%d)=%v, dense %v", i, j, sparse.At(i, j), dense.At(i, j))
			}
		}
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := RandomRegular(200, 3, WeightUnit, 41)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 || g.M() != 300 {
		t.Fatalf("got %d nodes, %d edges; want 200, 300", g.N(), g.M())
	}
	for v, d := range g.Degrees() {
		if d != 3 {
			t.Fatalf("node %d has degree %d, want 3", v, d)
		}
	}
	// Deterministic for a fixed seed.
	h, err := RandomRegular(200, 3, WeightUnit, 41)
	if err != nil {
		t.Fatal(err)
	}
	ge, he := g.SortedEdges(), h.SortedEdges()
	for i := range ge {
		if ge[i] != he[i] {
			t.Fatalf("edge %d differs across identical seeds: %+v vs %+v", i, ge[i], he[i])
		}
	}
	if _, err := RandomRegular(5, 3, WeightUnit, 1); err == nil {
		t.Fatal("odd n·d must be rejected")
	}
	if _, err := RandomRegular(4, 4, WeightUnit, 1); err == nil {
		t.Fatal("d >= n must be rejected")
	}
	if _, err := RandomRegular(0, 0, WeightUnit, 1); err == nil {
		t.Fatal("empty graph must be rejected")
	}
}
