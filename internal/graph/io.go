package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The GSET text format: a header line "n m" followed by m lines
// "u v w" with 1-indexed node ids and integer weights. This is the
// format emitted by the Rudy generator and consumed by most max-cut
// solvers, so cmd/rudy and cmd/sophie interoperate with existing tools.

// Write serializes g in GSET text format. Edges are written in sorted
// order so output is deterministic. Weights are written as integers when
// they are integral, otherwise with full float precision.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.SortedEdges() {
		//sophielint:ignore floateq round-trip through int64 is the exact integrality test, not a tolerance comparison
		if e.Weight == float64(int64(e.Weight)) {
			if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U+1, e.V+1, int64(e.Weight)); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.U+1, e.V+1, e.Weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a graph in GSET text format. Blank lines and lines starting
// with '#' or 'c' (DIMACS-style comments) are skipped.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *Graph
	want := 0
	edgeLines := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "c") {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: header needs \"n m\", got %q", line, text)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[0])
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("graph: line %d: bad edge count %q", line, fields[1])
			}
			// A simple undirected graph holds at most n(n-1)/2 edges; a
			// header promising more is corrupt, so reject it before
			// reading (and allocating for) the edge lines it implies.
			if int64(m) > int64(n)*int64(n-1)/2 {
				return nil, fmt.Errorf("graph: line %d: header promises %d edges but %d nodes admit at most %d",
					line, m, n, int64(n)*int64(n-1)/2)
			}
			g = New(n)
			want = m
			continue
		}
		if edgeLines++; edgeLines > want {
			return nil, fmt.Errorf("graph: line %d: more edge lines than the %d the header promised", line, want)
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: edge needs \"u v w\", got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node %q", line, fields[1])
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("graph: line %d: bad weight %q", line, fields[2])
		}
		if err := g.AddEdge(u-1, v-1, w); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if edgeLines != want {
		return nil, fmt.Errorf("graph: header promised %d edges, parsed %d", want, edgeLines)
	}
	// The stored count can fall below the line count only when a line
	// duplicated an earlier edge or carried zero weight — both signs of
	// a file this canonical writer never produces.
	if g.M() != want {
		return nil, fmt.Errorf("graph: %d of %d edge lines were duplicates or zero-weight", want-g.M(), want)
	}
	return g, nil
}
