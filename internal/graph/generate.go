package graph

import (
	"fmt"
	"math/rand"
)

// The generators below follow the Rudy graph generator conventions the
// paper uses for its benchmarks (Section IV-A, Table I): GSET-style
// sparse random graphs and complete "K-graphs" with random edge weights.
// The original GSET files are not available offline, so G1/G22 stand-ins
// are generated with the same order, size, and weight distribution under
// fixed seeds; see DESIGN.md for the substitution rationale.

// WeightScheme selects how edge weights are drawn.
type WeightScheme int

const (
	// WeightUnit assigns every edge weight +1 (GSET G1/G22 style).
	WeightUnit WeightScheme = iota
	// WeightPM1 assigns ±1 uniformly at random (GSET G11+ style).
	WeightPM1
	// WeightUniform assigns integer weights uniformly in [-10, 10]\{0}.
	WeightUniform
)

func (s WeightScheme) String() string {
	switch s {
	case WeightUnit:
		return "unit"
	case WeightPM1:
		return "pm1"
	case WeightUniform:
		return "uniform"
	default:
		return fmt.Sprintf("WeightScheme(%d)", int(s))
	}
}

func drawWeight(s WeightScheme, rng *rand.Rand) float64 {
	switch s {
	case WeightUnit:
		return 1
	case WeightPM1:
		if rng.Intn(2) == 0 {
			return -1
		}
		return 1
	case WeightUniform:
		// Uniform over {-10..-1, 1..10}.
		w := rng.Intn(20) // 0..19
		if w < 10 {
			return float64(w - 10) // -10..-1
		}
		return float64(w - 9) // 1..10
	default:
		panic(fmt.Sprintf("graph: unknown weight scheme %d", int(s)))
	}
}

// Random generates a sparse random graph with exactly m distinct edges,
// Rudy "rnd_graph" style. It returns an error if m exceeds the number of
// possible edges. Generation is deterministic for a given seed.
func Random(n, m int, scheme WeightScheme, seed int64) (*Graph, error) {
	maxEdges := n * (n - 1) / 2
	if m < 0 || m > maxEdges {
		return nil, fmt.Errorf("graph: cannot place %d edges in a %d-node graph (max %d)", m, n, maxEdges)
	}
	g := New(n)
	rng := rand.New(rand.NewSource(seed))
	// Rejection sampling is fast for the sparse graphs we target
	// (GSET densities are a few percent). Fall back to dense
	// enumeration when the requested density is high.
	if float64(m) > 0.4*float64(maxEdges) {
		type pair struct{ u, v int }
		all := make([]pair, 0, maxEdges)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				all = append(all, pair{u, v})
			}
		}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		for _, p := range all[:m] {
			if err := g.AddEdge(p.u, p.v, drawWeight(scheme, rng)); err != nil {
				return nil, err
			}
		}
		return g, nil
	}
	for g.M() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v, drawWeight(scheme, rng)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// RandomRegular generates a uniformly random simple d-regular graph on
// n nodes via the configuration model: every node gets d stubs, the
// stubs are shuffled and paired, and the whole pairing is retried from
// scratch if it produces a self-loop or parallel edge. For fixed d the
// acceptance probability tends to e^(-(d²-1)/4) — a constant number of
// O(n·d) attempts — so million-node instances generate in seconds.
// n·d must be even and d < n. Generation is deterministic for a given
// seed.
func RandomRegular(n, d int, scheme WeightScheme, seed int64) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: node count must be positive, got %d", n)
	}
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: degree %d outside [0,%d) for %d nodes", d, n, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n·d = %d·%d is odd; a %d-regular graph on %d nodes does not exist", n, d, d, n)
	}
	rng := rand.New(rand.NewSource(seed))
	stubs := make([]int, n*d)
	pairs := make([][2]int, 0, n*d/2)
	seen := make(map[[2]int]struct{}, n*d/2)
	const maxAttempts = 1000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		for i := range stubs {
			stubs[i] = i / d
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		pairs = pairs[:0]
		clear(seen)
		simple := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				simple = false
				break
			}
			key := edgeKey(u, v)
			if _, dup := seen[key]; dup {
				simple = false
				break
			}
			seen[key] = struct{}{}
			pairs = append(pairs, key)
		}
		if !simple {
			continue
		}
		g := New(n)
		for _, p := range pairs {
			w := drawWeight(scheme, rng)
			for w == 0 {
				w = drawWeight(scheme, rng)
			}
			if err := g.AddEdge(p[0], p[1], w); err != nil {
				return nil, err
			}
		}
		return g, nil
	}
	return nil, fmt.Errorf("graph: no simple %d-regular pairing found in %d attempts", d, maxAttempts)
}

// Complete generates the complete graph K_n with random edge weights,
// the paper's "K-graph" workload (K100, K16384, K32768 in Table I).
func Complete(n int, scheme WeightScheme, seed int64) *Graph {
	g := New(n)
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			w := drawWeight(scheme, rng)
			for w == 0 {
				w = drawWeight(scheme, rng)
			}
			// AddEdge cannot fail here: u<v in range, w != 0.
			if err := g.AddEdge(u, v, w); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// Toroidal generates a w x h toroidal 2D grid with ±1 weights, the Rudy
// "toroidal_grid_2D" family that appears elsewhere in GSET. Included for
// benchmark coverage beyond the paper's two instance families.
func Toroidal(w, h int, seed int64) *Graph {
	n := w * h
	g := New(n)
	rng := rand.New(rand.NewSource(seed))
	id := func(x, y int) int { return ((y+h)%h)*w + (x+w)%w }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := id(x, y)
			for _, v := range []int{id(x+1, y), id(x, y+1)} {
				if u == v || g.HasEdge(u, v) {
					continue
				}
				if err := g.AddEdge(u, v, drawWeight(WeightPM1, rng)); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// Benchmark instance identifiers matching Table I of the paper.
const (
	seedG1  = 53100 // fixed seeds make the stand-ins reproducible
	seedG22 = 53122
	seedK   = 53199
)

// G1Standin returns a synthetic stand-in for GSET G1: 800 nodes, 19176
// unit-weight edges.
func G1Standin() *Graph {
	g, err := Random(800, 19176, WeightUnit, seedG1)
	if err != nil {
		panic(err) // parameters are static and valid
	}
	return g
}

// G22Standin returns a synthetic stand-in for GSET G22: 2000 nodes,
// 19990 unit-weight edges (~1% density).
func G22Standin() *Graph {
	g, err := Random(2000, 19990, WeightUnit, seedG22)
	if err != nil {
		panic(err)
	}
	return g
}

// KGraph returns the complete graph on n nodes with ±1 random weights,
// as generated by Rudy for the paper's K100/K16384/K32768 workloads.
func KGraph(n int) *Graph {
	return Complete(n, WeightPM1, seedK+int64(n))
}

// Instance describes a named benchmark graph (Table I).
type Instance struct {
	Name        string
	Nodes       int
	Description string
	Build       func() *Graph
}

// TableI returns the paper's benchmark set. The two large K-graphs are
// listed with builders but are typically consumed through the analytic
// timing model rather than materialized (building K32768 allocates ~540M
// edges).
func TableI() []Instance {
	return []Instance{
		{Name: "G1", Nodes: 800, Description: "From GSET dataset (synthetic stand-in)", Build: G1Standin},
		{Name: "G22", Nodes: 2000, Description: "From GSET dataset (synthetic stand-in)", Build: G22Standin},
		{Name: "K100", Nodes: 100, Description: "Randomly generated complete graph", Build: func() *Graph { return KGraph(100) }},
		{Name: "K16384", Nodes: 16384, Description: "Randomly generated complete graph", Build: func() *Graph { return KGraph(16384) }},
		{Name: "K32768", Nodes: 32768, Description: "Randomly generated complete graph", Build: func() *Graph { return KGraph(32768) }},
	}
}
