// Package graph provides the weighted undirected graphs used as Ising
// benchmarks: a compact edge-list representation, Rudy-style generators
// for GSET-like instances and complete K-graphs (Table I of the paper),
// GSET text-format I/O, and max-cut evaluation utilities.
package graph

import (
	"fmt"
	"sort"

	"sophie/internal/linalg"
)

// Edge is an undirected weighted edge between nodes U < V (0-indexed).
type Edge struct {
	U, V   int
	Weight float64
}

// Graph is a weighted undirected graph over nodes 0..N-1.
// Parallel edges are not allowed; self-loops are rejected.
type Graph struct {
	n     int
	edges []Edge
	seen  map[[2]int]int // edge key -> index into edges
}

// New returns an empty graph with n nodes.
// It panics if n is negative.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, seen: make(map[[2]int]int)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. The slice aliases internal storage and
// must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// AddEdge inserts an undirected edge with the given weight. Adding an
// edge that already exists overwrites its weight. It returns an error for
// self-loops or out-of-range endpoints; zero-weight edges are dropped.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range for %d nodes", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	key := edgeKey(u, v)
	if idx, ok := g.seen[key]; ok {
		if w == 0 {
			// Overwriting with zero weight removes the edge.
			last := len(g.edges) - 1
			moved := g.edges[last]
			g.edges[idx] = moved
			g.seen[edgeKey(moved.U, moved.V)] = idx
			g.edges = g.edges[:last]
			delete(g.seen, key)
			return nil
		}
		g.edges[idx].Weight = w
		return nil
	}
	if w == 0 {
		return nil
	}
	g.seen[key] = len(g.edges)
	g.edges = append(g.edges, Edge{U: key[0], V: key[1], Weight: w})
	return nil
}

// HasEdge reports whether an edge between u and v exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.seen[edgeKey(u, v)]
	return ok
}

// Weight returns the weight of edge (u,v), or 0 when absent.
func (g *Graph) Weight(u, v int) float64 {
	if idx, ok := g.seen[edgeKey(u, v)]; ok {
		return g.edges[idx].Weight
	}
	return 0
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	sum := 0.0
	for _, e := range g.edges {
		sum += e.Weight
	}
	return sum
}

// Degrees returns the degree (edge count, not weighted) of every node.
func (g *Graph) Degrees() []int {
	deg := make([]int, g.n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}

// Density returns M / (N·(N-1)/2), the fraction of possible edges present.
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	return float64(len(g.edges)) / (float64(g.n) * float64(g.n-1) / 2)
}

// AdjacencyMatrix returns the dense symmetric adjacency matrix A with
// A[u][v] = weight(u,v).
func (g *Graph) AdjacencyMatrix() *linalg.Matrix {
	a := linalg.NewMatrix(g.n, g.n)
	for _, e := range g.edges {
		a.Set(e.U, e.V, e.Weight)
		a.Set(e.V, e.U, e.Weight)
	}
	return a
}

// CouplingMatrix returns the Ising coupling matrix K = -A for the max-cut
// mapping: minimizing H = -½ σᵀKσ maximizes the cut (Section II-B).
func (g *Graph) CouplingMatrix() *linalg.Matrix {
	k := g.AdjacencyMatrix()
	k.Scale(-1)
	return k
}

// CouplingCSR returns the same coupling matrix in sparse CSR form, for
// the iterative preprocessing paths (GSET instances are ~1% dense, so
// the sparse operator is ~100x cheaper per Lanczos step).
func (g *Graph) CouplingCSR() *linalg.CSR {
	entries := make([]linalg.Entry, 0, len(g.edges))
	for _, e := range g.edges {
		entries = append(entries, linalg.Entry{Row: e.U, Col: e.V, Val: -e.Weight})
	}
	c, err := linalg.NewCSRSym(g.n, entries)
	if err != nil {
		panic(err) // edges are validated at insertion
	}
	return c
}

// CutValue returns the total weight of edges crossing the partition
// defined by spins (one ±1 entry per node). Entries with value +1 form
// one subset, -1 the other. It panics if len(spins) != N or a spin is
// not ±1.
func (g *Graph) CutValue(spins []int8) float64 {
	if len(spins) != g.n {
		panic(fmt.Sprintf("graph: CutValue got %d spins for %d nodes", len(spins), g.n))
	}
	for i, s := range spins {
		if s != 1 && s != -1 {
			panic(fmt.Sprintf("graph: spin %d has invalid value %d", i, s))
		}
	}
	cut := 0.0
	for _, e := range g.edges {
		if spins[e.U] != spins[e.V] {
			cut += e.Weight
		}
	}
	return cut
}

// IsingEnergy returns H = -½ Σ σᵢKᵢⱼσⱼ with K = -A (Eq. 1 under the
// max-cut mapping). CutValue and IsingEnergy satisfy
// cut = (TotalWeight - H') / 2 where H' = Σ_edges w·σu·σv = H under this
// convention; see TestCutEnergyDuality.
func (g *Graph) IsingEnergy(spins []int8) float64 {
	h := 0.0
	for _, e := range g.edges {
		h += e.Weight * float64(spins[e.U]) * float64(spins[e.V])
	}
	return h
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = append(c.edges, g.edges...)
	for k, v := range g.seen {
		c.seen[k] = v
	}
	return c
}

// SortedEdges returns a copy of the edge list sorted by (U,V), used for
// deterministic serialization.
func (g *Graph) SortedEdges() []Edge {
	es := append([]Edge(nil), g.edges...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}
