package graph

import (
	"math"
	"sort"
)

// Analysis utilities over benchmark instances: connectivity, degree
// statistics, and cut bounds used by the experiment harness and by
// sanity tests of the generators.

// ConnectedComponents returns the node sets of the connected components
// in ascending order of their smallest node.
func (g *Graph) ConnectedComponents() [][]int {
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, e := range g.edges {
		union(e.U, e.V)
	}
	groups := map[int][]int{}
	for v := 0; v < g.n; v++ {
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}

// IsConnected reports whether the graph has exactly one connected
// component (the empty graph is considered disconnected unless it has
// one node).
func (g *Graph) IsConnected() bool {
	return len(g.ConnectedComponents()) == 1
}

// DegreeStats summarizes the degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Std      float64
}

// DegreeStatistics computes degree distribution summary statistics.
func (g *Graph) DegreeStatistics() DegreeStats {
	deg := g.Degrees()
	if len(deg) == 0 {
		return DegreeStats{}
	}
	s := DegreeStats{Min: deg[0], Max: deg[0]}
	sum := 0
	for _, d := range deg {
		sum += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	s.Mean = float64(sum) / float64(len(deg))
	varSum := 0.0
	for _, d := range deg {
		diff := float64(d) - s.Mean
		varSum += diff * diff
	}
	s.Std = math.Sqrt(varSum / float64(len(deg)))
	return s
}

// CutUpperBound returns the trivial max-cut upper bound: the total
// weight of positive edges (negative edges can always be kept uncut).
func (g *Graph) CutUpperBound() float64 {
	sum := 0.0
	for _, e := range g.edges {
		if e.Weight > 0 {
			sum += e.Weight
		}
	}
	return sum
}

// GreedyCut computes a deterministic greedy max-cut assignment: nodes
// are processed in order and placed on the side that currently gains
// more cut weight. Returns the spins and the cut value — a cheap lower
// bound for calibrating solvers.
func (g *Graph) GreedyCut() ([]int8, float64) {
	spins := make([]int8, g.n)
	adj := make([][]Edge, g.n)
	for _, e := range g.edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], Edge{U: e.V, V: e.U, Weight: e.Weight})
	}
	for v := 0; v < g.n; v++ {
		gainUp := 0.0
		for _, e := range adj[v] {
			other := e.V
			if other < v { // already placed
				gainUp += e.Weight * float64(-spins[other])
			}
		}
		if gainUp >= 0 {
			spins[v] = 1
		} else {
			spins[v] = -1
		}
	}
	return spins, g.CutValue(spins)
}
