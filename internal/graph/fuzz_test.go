package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzParseRudy hammers the GSET/Rudy text parser with arbitrary input.
// Two properties must hold for every input:
//
//  1. Read never panics and never returns (nil, nil) — hostile headers,
//     short edge lines, out-of-range ids, and absurd counts all surface
//     as errors.
//  2. Any graph Read accepts survives a Write/Read round trip exactly:
//     same node and edge counts, same per-edge weights, and a
//     byte-identical second serialization (Write is canonical).
func FuzzParseRudy(f *testing.F) {
	seeds := []string{
		"",
		"2 1\n1 2 1\n",
		"3 2\n1 2 1\n2 3 -2\n",
		"2 1\n1 2 0.5\n",
		"# comment\nc DIMACS comment\n\n4 3\n1 2 1\n2 3 1\n3 4 1\n",
		"2 1\n1 2 1e308\n",
		"3 3\n1 2 1\n1 3 1\n2 3 1\n",
		// Hostile shapes the parser must reject without panicking.
		"x y\n",
		"3\n",
		"-1 0\n",
		"2 1000000000\n",
		"2 1\n1 2\n",
		"2 1\n1 9 1\n",
		"2 1\n0 2 1\n",
		"2 1\n1 1 1\n",
		"2 1\n1 2 NaN\n",
		"2 1\n1 2 +Inf\n",
		"3 2\n1 2 1\n2 1 5\n",
		"2 1\n1 2 1\n1 2 2\n",
		"2 1\n1 2 0\n",
		"9999999 1\n1 2 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("Read returned nil graph and nil error")
		}
		for _, e := range g.Edges() {
			if e.U < 0 || e.V >= g.N() || e.U >= e.V {
				t.Fatalf("accepted malformed edge %+v in %d-node graph", e, g.N())
			}
			if e.Weight == 0 || math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
				t.Fatalf("accepted non-finite or zero weight %v", e.Weight)
			}
		}

		var first bytes.Buffer
		if err := Write(&first, g); err != nil {
			t.Fatalf("writing accepted graph: %v", err)
		}
		back, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own serialization %q: %v", first.String(), err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d", g.N(), g.M(), back.N(), back.M())
		}
		for _, e := range g.Edges() {
			if got := back.Weight(e.U, e.V); got != e.Weight {
				t.Fatalf("edge (%d,%d) weight %v -> %v", e.U, e.V, e.Weight, got)
			}
		}
		var second bytes.Buffer
		if err := Write(&second, back); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization not canonical:\n%q\nvs\n%q", first.String(), second.String())
		}
	})
}
