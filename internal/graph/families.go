package graph

import (
	"fmt"
	"math/rand"
)

// Additional Rudy-style instance families beyond the paper's benchmark
// set, useful for exercising solver behavior across topologies: random
// regular graphs (the hard max-cut family), preferential-attachment
// graphs (heavy-tailed degrees), and random bipartite graphs (known
// optimal cuts, good for validation).

// Regular generates a random d-regular graph on n nodes via the
// configuration (pairing) model with rejection of self-loops and
// duplicate edges. n·d must be even and d < n.
func Regular(n, d int, scheme WeightScheme, seed int64) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: degree %d invalid for %d nodes", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d = %d*%d must be even", n, d)
	}
	rng := rand.New(rand.NewSource(seed))
	const maxAttempts = 1000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := tryPairing(n, d, scheme, rng)
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: pairing model failed to produce a simple %d-regular graph after %d attempts", d, maxAttempts)
}

// tryPairing attempts one configuration-model draw.
func tryPairing(n, d int, scheme WeightScheme, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil, false // reject and retry
		}
		if err := g.AddEdge(u, v, drawWeight(scheme, rng)); err != nil {
			return nil, false
		}
	}
	return g, true
}

// PreferentialAttachment generates a Barabási-Albert graph: nodes join
// one at a time, each attaching m edges to existing nodes with
// probability proportional to their degree. The first m+1 nodes form a
// clique.
func PreferentialAttachment(n, m int, scheme WeightScheme, seed int64) (*Graph, error) {
	if m < 1 || m >= n {
		return nil, fmt.Errorf("graph: attachment count %d invalid for %d nodes", m, n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	// Degree-proportional sampling via a repeated-endpoint list.
	var endpoints []int
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			if err := g.AddEdge(u, v, drawWeight(scheme, rng)); err != nil {
				return nil, err
			}
			endpoints = append(endpoints, u, v)
		}
	}
	for v := m + 1; v < n; v++ {
		attached := map[int]bool{}
		for len(attached) < m {
			u := endpoints[rng.Intn(len(endpoints))]
			if u == v || attached[u] {
				continue
			}
			attached[u] = true
		}
		for u := range attached {
			if err := g.AddEdge(u, v, drawWeight(scheme, rng)); err != nil {
				return nil, err
			}
			endpoints = append(endpoints, u, v)
		}
	}
	return g, nil
}

// Bipartite generates a random bipartite graph between parts of sizes
// na and nb with the given number of cross edges and positive unit
// weights. Because every edge crosses the parts, the max cut equals the
// total edge count — a known ground truth for solver validation.
func Bipartite(na, nb, edges int, seed int64) (*Graph, error) {
	if na < 1 || nb < 1 {
		return nil, fmt.Errorf("graph: bipartite parts must be nonempty, got %d/%d", na, nb)
	}
	maxEdges := na * nb
	if edges < 0 || edges > maxEdges {
		return nil, fmt.Errorf("graph: cannot place %d edges across %dx%d parts", edges, na, nb)
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(na + nb)
	for g.M() < edges {
		u := rng.Intn(na)
		v := na + rng.Intn(nb)
		if g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v, 1); err != nil {
			return nil, err
		}
	}
	return g, nil
}
