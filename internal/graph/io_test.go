package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g, err := Random(20, 40, WeightUniform, 17)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if back.Weight(e.U, e.V) != e.Weight {
			t.Fatalf("edge (%d,%d) weight %v became %v", e.U, e.V, e.Weight, back.Weight(e.U, e.V))
		}
	}
}

func TestWriteFormat(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, -2)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := "3 2\n1 2 1\n2 3 -2\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func TestWriteFractionalWeight(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 0.5)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.5") {
		t.Fatalf("fractional weight lost: %q", buf.String())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Weight(0, 1) != 0.5 {
		t.Fatal("fractional weight did not round trip")
	}
}

func TestReadSkipsComments(t *testing.T) {
	in := "# a comment\nc another\n\n2 1\n1 2 3\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.Weight(0, 1) != 3 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"header arity", "3\n"},
		{"negative count", "-1 0\n"},
		{"bad edge arity", "2 1\n1 2\n"},
		{"bad node", "2 1\nx 2 1\n"},
		{"bad weight", "2 1\n1 2 w\n"},
		{"edge count mismatch", "3 2\n1 2 1\n"},
		{"out of range", "2 1\n1 9 1\n"},
		{"self loop", "2 1\n1 1 1\n"},
		{"zero node id", "2 1\n0 2 1\n"},
		{"header overpromises", "3 4\n1 2 1\n1 3 1\n2 3 1\n"},
		{"huge header", "2 1000000000\n"},
		{"excess edge lines", "2 1\n1 2 1\n1 2 2\n"},
		{"duplicate edge", "3 2\n1 2 1\n2 1 5\n"},
		{"zero weight edge", "2 1\n1 2 0\n"},
		{"nan weight", "2 1\n1 2 NaN\n"},
		{"inf weight", "2 1\n1 2 +Inf\n"},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
