package graph

import (
	"math"
	"testing"
)

func TestRegular(t *testing.T) {
	g, err := Regular(20, 4, WeightPM1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range g.Degrees() {
		if d != 4 {
			t.Fatalf("node %d has degree %d, want 4", v, d)
		}
	}
	if g.M() != 20*4/2 {
		t.Fatalf("edge count %d", g.M())
	}
}

func TestRegularValidation(t *testing.T) {
	if _, err := Regular(5, 3, WeightUnit, 1); err == nil {
		t.Fatal("odd n*d must be rejected")
	}
	if _, err := Regular(4, 4, WeightUnit, 1); err == nil {
		t.Fatal("d >= n must be rejected")
	}
	if _, err := Regular(4, -1, WeightUnit, 1); err == nil {
		t.Fatal("negative degree must be rejected")
	}
}

func TestRegularDeterministic(t *testing.T) {
	a, err := Regular(16, 3, WeightUnit, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Regular(16, 3, WeightUnit, 7)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.SortedEdges(), b.SortedEdges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("regular generator nondeterministic")
		}
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g, err := PreferentialAttachment(60, 3, WeightUnit, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Expected edges: clique on m+1=4 nodes (6) + 3 per remaining node.
	want := 6 + 3*(60-4)
	if g.M() != want {
		t.Fatalf("edge count %d, want %d", g.M(), want)
	}
	stats := g.DegreeStatistics()
	// Preferential attachment yields a heavy tail: max degree well above
	// the mean.
	if float64(stats.Max) < 2*stats.Mean {
		t.Fatalf("degree distribution too flat: max %d, mean %.1f", stats.Max, stats.Mean)
	}
	if !g.IsConnected() {
		t.Fatal("BA graphs are connected by construction")
	}
}

func TestPreferentialAttachmentValidation(t *testing.T) {
	if _, err := PreferentialAttachment(5, 0, WeightUnit, 1); err == nil {
		t.Fatal("m=0 must be rejected")
	}
	if _, err := PreferentialAttachment(3, 3, WeightUnit, 1); err == nil {
		t.Fatal("m>=n must be rejected")
	}
}

func TestBipartite(t *testing.T) {
	g, err := Bipartite(8, 12, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.M() != 40 {
		t.Fatalf("shape %d/%d", g.N(), g.M())
	}
	// Every edge crosses the parts.
	for _, e := range g.Edges() {
		if (e.U < 8) == (e.V < 8) {
			t.Fatalf("edge (%d,%d) does not cross the parts", e.U, e.V)
		}
	}
	// The bipartition cuts everything: max cut = M.
	spins := make([]int8, 20)
	for i := range spins {
		if i < 8 {
			spins[i] = 1
		} else {
			spins[i] = -1
		}
	}
	if g.CutValue(spins) != 40 {
		t.Fatal("bipartition must cut every edge")
	}
	if g.CutUpperBound() != 40 {
		t.Fatal("upper bound must equal total positive weight")
	}
}

func TestBipartiteValidation(t *testing.T) {
	if _, err := Bipartite(0, 5, 1, 1); err == nil {
		t.Fatal("empty part must be rejected")
	}
	if _, err := Bipartite(2, 2, 5, 1); err == nil {
		t.Fatal("too many edges must be rejected")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(4, 5, 1)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("%d components, want 3", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Fatalf("isolated node component %v", comps[1])
	}
	if g.IsConnected() {
		t.Fatal("graph is not connected")
	}
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	if !g.IsConnected() {
		t.Fatal("graph should now be connected")
	}
}

func TestDegreeStatistics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	s := g.DegreeStatistics()
	if s.Min != 1 || s.Max != 3 {
		t.Fatalf("stats %+v", s)
	}
	if math.Abs(s.Mean-1.5) > 1e-12 {
		t.Fatalf("mean %v, want 1.5", s.Mean)
	}
	empty := New(0).DegreeStatistics()
	if empty.Max != 0 {
		t.Fatal("empty graph stats must be zero")
	}
}

func TestGreedyCut(t *testing.T) {
	// Bipartite graphs: greedy from scratch should find a perfect cut on
	// a star (all edges from node 0).
	g := New(5)
	for v := 1; v < 5; v++ {
		g.AddEdge(0, v, 1)
	}
	spins, cut := g.GreedyCut()
	if cut != 4 {
		t.Fatalf("greedy cut %v on a star, want 4", cut)
	}
	if g.CutValue(spins) != cut {
		t.Fatal("reported cut inconsistent with spins")
	}
	// Greedy is always at least half the upper bound on unit graphs.
	r, err := Random(40, 200, WeightUnit, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, gc := r.GreedyCut()
	if gc < 0.5*r.CutUpperBound() {
		t.Fatalf("greedy cut %v below half of bound %v", gc, r.CutUpperBound())
	}
}
