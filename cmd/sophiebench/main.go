// Command sophiebench runs the repository's tracked performance
// benchmarks and emits a machine-readable JSON baseline (schema
// "sophie-bench/v1"). The committed BENCH_PR9.json snapshots the
// incremental-datapath speedup on the G22-mini solver workload, the
// underlying linalg kernel costs, the batched replica runtime's
// throughput scaling, the cost of the trace emitters (per-phase
// wall-time attribution of one traced solve plus the derived
// trace_overhead metrics that guard the "untraced solves pay (almost)
// nothing" contract), the lint suite's wall time (nine-analyzer
// single-walk run vs the six original analyzers under the old
// walk-per-analyzer model, guarded by lint_shared9_over_isolated6),
// and — since the sparse-first datapath — the CSR engine against the
// forced-dense engine on the same G22-mini workload (guarded by
// sparse_over_dense_speedup) plus the sparse scaling arm: full solves
// of random-regular instances from 10k up to one million nodes, the
// n-vs-time curve dense storage cannot reach — and, since the
// tempering portfolio runtime, a time-to-target pair racing the
// exchange-ladder mode against the independent-restart early-stop
// portfolio on the same target (derived tempering_over_portfolio) —
// and, since the durable service layer, the WAL append pair: a
// buffered journal append (what every started/terminal transition
// costs the worker) against a group-commit fsync'd append (the
// durability point each accepted submission pays), with the derived
// wal_overhead guarding that journaling stays a rounding error next
// to one solve.
// CI re-runs the suite
// with -benchtime=1x as a smoke test and uploads the fresh report as
// an artifact. See README.md "Benchmarks".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"sophie/internal/analysis"
	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/linalg"
	"sophie/internal/service"
	"sophie/internal/trace"
	"sophie/internal/wal"
)

// report is the sophie-bench/v1 JSON document.
type report struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPUs       int         `json:"cpus"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []benchmark `json:"benchmarks"`
	// Phases attributes one traced G22-mini solve's wall time to the
	// execution phases of the trace spine (Options.Timing).
	Phases  *phaseAttribution  `json:"phases,omitempty"`
	Derived map[string]float64 `json:"derived"`
}

// phaseAttribution is the per-phase breakdown of one traced solve.
type phaseAttribution struct {
	InitNS      int64   `json:"init_ns"`
	LocalNS     int64   `json:"local_ns"`
	GlobalNS    int64   `json:"global_ns"`
	ReprogramNS int64   `json:"reprogram_ns"`
	TotalNS     int64   `json:"total_ns"`
	InitFrac    float64 `json:"init_frac"`
	LocalFrac   float64 `json:"local_frac"`
	GlobalFrac  float64 `json:"global_frac"`
	// Events is how many control-plane events the solve emitted — the
	// volume behind the trace_overhead derivation.
	Events int64 `json:"events"`
}

type benchmark struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func main() {
	out := flag.String("o", "BENCH_PR9.json", "output path for the JSON report")
	benchtime := flag.String("benchtime", "2s", "per-benchmark budget (Go benchtime syntax, e.g. 2s or 1x)")
	testing.Init()
	flag.Parse()
	if err := run(*benchtime, *out); err != nil {
		fmt.Fprintln(os.Stderr, "sophiebench:", err)
		os.Exit(1)
	}
}

// batchParWorkers is the parallel arm of the batch-throughput pair: one
// batch worker per core, floored at 2 so the parallel arm keeps a
// distinct benchmark name (and exercises the concurrent scheduler) even
// on a single-core host, where the scaling ratio honestly reports ~1.
func batchParWorkers() int {
	if n := runtime.NumCPU(); n > 2 {
		return n
	}
	return 2
}

// loadLintWorkload parses and type-checks the lint benchmark's fixed
// package set — internal/core and internal/service, the two packages
// the concurrency analyzers exist for — outside the timed region.
func loadLintWorkload() ([]*analysis.Unit, *analysis.Loader, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, nil, err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return nil, nil, err
	}
	var units []*analysis.Unit
	for _, rel := range []string{"internal/core", "internal/service"} {
		us, err := loader.LoadDir(filepath.Join(loader.ModuleRoot, rel), "")
		if err != nil {
			return nil, nil, err
		}
		units = append(units, us...)
	}
	return units, loader, nil
}

// run executes the suite under the given benchtime and writes the JSON
// report to out. Split from main so the package test drives it.
func run(benchtime, out string) error {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return err
	}

	rep := report{
		Schema:    "sophie-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Benchtime: benchtime,
		Derived:   map[string]float64{},
	}
	byName := map[string]testing.BenchmarkResult{}
	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		byName[name] = r
		rep.Benchmarks = append(rep.Benchmarks, benchmark{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: int64(r.AllocsPerOp()),
			BytesPerOp:  int64(r.AllocedBytesPerOp()),
		})
	}

	// --- linalg kernels: dense MVM vs the binary column-gather kernel
	// vs a single-column delta patch, at the paper's tile order.
	const order = 64
	rng := rand.New(rand.NewSource(9))
	m := linalg.NewMatrix(order, order)
	for i := 0; i < order; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	m.ColMirror() // build the mirror outside the timed region
	x := make([]float64, order)
	for i := range x {
		x[i] = float64(rng.Intn(2))
	}
	y := make([]float64, order)
	record("linalg/MulVec64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.MulVec(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("linalg/MulVecBinary64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.MulVecBinary(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("linalg/AccumulateColumn64", func(b *testing.B) {
		b.ReportAllocs()
		sign := 1.0
		for i := 0; i < b.N; i++ {
			if err := m.AccumulateColumn(y, i%order, sign); err != nil {
				b.Fatal(err)
			}
			sign = -sign
		}
	})

	// --- Solver: the G22-mini workload of the root benchmarks (Rudy
	// random graph at 1/16 the G22 order, 30 global iterations) at the
	// paper's default tile order of 64, reference path vs incremental
	// datapath. Workers is pinned to 1 so the comparison isolates the
	// arithmetic saved per PE from goroutine scheduling noise.
	g, err := graph.Random(125, 650, graph.WeightUnit, 53122)
	if err != nil {
		return err
	}
	model := ising.FromMaxCut(g)
	cfg := core.DefaultConfig()
	cfg.GlobalIters = 30
	cfg.Phi = 0.2
	cfg.Workers = 1
	solveBench := func(s *core.Solver) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	exactCfg := cfg
	exactCfg.ExactRecompute = true
	exactSolver, err := core.NewSolver(model, exactCfg)
	if err != nil {
		return err
	}
	deltaSolver, err := core.NewSolver(model, cfg)
	if err != nil {
		return err
	}
	record("solver/G22mini-exact", solveBench(exactSolver))
	record("solver/G22mini-delta", solveBench(deltaSolver))

	// --- Sparse datapath: the same G22-mini workload under
	// SkipTransform (the couplings stay at their 8.3% stored density),
	// auto-picked CSR engine vs the ForceDense escape hatch. The two
	// arms compute bit-identical trajectories (the golden tests in
	// internal/core pin that), so the derived sparse_over_dense_speedup
	// is a pure datapath comparison.
	skipCfg := cfg
	skipCfg.SkipTransform = true
	denseCfg := skipCfg
	denseCfg.ForceDense = true
	sparseSolver, err := core.NewSolver(model, skipCfg)
	if err != nil {
		return err
	}
	denseSolver, err := core.NewSolver(model, denseCfg)
	if err != nil {
		return err
	}
	// Warm both arms outside the timed region: the derived speedup is
	// guarded (>= 1.0) even at -benchtime=1x, where a single timed
	// solve would otherwise absorb first-call effects.
	for _, s := range []*core.Solver{sparseSolver, denseSolver} {
		if _, err := s.Run(0); err != nil {
			return err
		}
	}
	record("solver/G22mini-sparse-delta", solveBench(sparseSolver))
	record("solver/G22mini-dense-delta", solveBench(denseSolver))

	// --- Sparse scaling arm: full solves of random-regular (d=3)
	// max-cut instances built straight in CSR (MaxCutSparse path, no
	// dense matrix ever materialized), from 10k to one million nodes.
	// Iteration counts are tiny — the point is the n-vs-time curve of
	// a complete solve at sizes where dense storage alone would need
	// n² · 8 bytes (8 TB at n=10⁶). Instance generation runs outside
	// the timed region.
	scaleNodes := []int{10_000, 100_000, 1_000_000}
	for _, n := range scaleNodes {
		rg, err := graph.RandomRegular(n, 3, graph.WeightUnit, 1)
		if err != nil {
			return err
		}
		rm := ising.FromMaxCutCSR(rg)
		scfg := core.DefaultConfig()
		scfg.TileSize = n
		scfg.GlobalIters = 2
		scfg.LocalIters = 2
		scfg.Phi = 0.1
		scfg.SkipTransform = true
		ss, err := core.NewSolver(rm, scfg)
		if err != nil {
			return err
		}
		record(fmt.Sprintf("sparse/scale-n%d", n), solveBench(ss))
	}

	// --- Sparse crossover arm: a compact re-recording of the
	// internal/core BenchmarkSparseCrossover sweep that sized the
	// per-tile-order sparse density thresholds. One density per tile
	// order, chosen inside the table's sparse region, so the derived
	// margins document how much headroom the thresholds keep on the
	// current host (both margins sat at 1.1–2x on the sizing host; a
	// margin falling toward 1.0 says the table needs re-measuring
	// here, not that results changed — the two engines are
	// bit-identical).
	for _, cr := range []struct {
		tile    int
		density float64
	}{{64, 0.30}, {256, 0.30}} {
		n := 2 * cr.tile
		edges := int(cr.density * float64(n*(n-1)) / 2)
		cg, err := graph.Random(n, edges, graph.WeightUnit, 1)
		if err != nil {
			return err
		}
		cm := ising.FromMaxCut(cg)
		ccfg := core.DefaultConfig()
		ccfg.TileSize = cr.tile
		ccfg.LocalIters = 4
		ccfg.GlobalIters = 8
		ccfg.Phi = 0.1
		ccfg.SkipTransform = true // density 30% < threshold: auto-picks CSR
		dcfg := ccfg
		dcfg.ForceDense = true
		cs, err := core.NewSolver(cm, ccfg)
		if err != nil {
			return err
		}
		ds, err := core.NewSolver(cm, dcfg)
		if err != nil {
			return err
		}
		for _, s := range []*core.Solver{cs, ds} {
			if _, err := s.Run(0); err != nil { // warm outside the timed region
				return err
			}
		}
		record(fmt.Sprintf("sparse/crossover-tile%d-sparse", cr.tile), solveBench(cs))
		record(fmt.Sprintf("sparse/crossover-tile%d-dense", cr.tile), solveBench(ds))
	}

	// --- Trace spine: the same workload with a live recorder attached
	// (ring retention + per-job progress subscriber, the sophied
	// configuration), plus the raw emitter costs. emitsPerOp batches the
	// nanosecond-scale emits so even a -benchtime=1x run times a
	// measurable span.
	tracedCfg := cfg
	tracedCfg.Tracer = trace.NewRecorder(trace.Options{
		OnEvent: trace.NewProgress().Observe,
	})
	tracedSolver, err := core.NewSolver(model, tracedCfg)
	if err != nil {
		return err
	}
	record("solver/G22mini-delta-traced", solveBench(tracedSolver))

	emitMeta := trace.Meta{
		Nodes: 125, TileSize: cfg.TileSize, Tiles: 2, Pairs: 3,
		LocalIters: cfg.LocalIters, GlobalIters: cfg.GlobalIters,
	}
	const emitsPerOp = 4096
	record("trace/emit-noop", func(b *testing.B) {
		b.ReportAllocs()
		run := trace.NewRun(emitMeta, nil)
		for i := 0; i < b.N; i++ {
			for j := 0; j < emitsPerOp; j++ {
				run.LocalBatch(j, j%3, false)
			}
		}
	})
	record("trace/emit-recorded", func(b *testing.B) {
		b.ReportAllocs()
		run := trace.NewRun(emitMeta, trace.NewRecorder(trace.Options{}))
		for i := 0; i < b.N; i++ {
			for j := 0; j < emitsPerOp; j++ {
				run.LocalBatch(j, j%3, false)
			}
		}
	})

	// One instrumented solve gives the per-phase attribution and the
	// event volume for the overhead derivation.
	timingRec := trace.NewRecorder(trace.Options{Timing: true})
	var solveEvents int64
	countRec := trace.NewRecorder(trace.Options{
		OnEvent: func(trace.Event) { solveEvents++ },
	})
	for _, rec := range []*trace.Recorder{timingRec, countRec} {
		timed, err := deltaSolver.WithRuntime(func(c *core.Config) { c.Tracer = rec })
		if err != nil {
			return err
		}
		if _, err := timed.Run(0); err != nil {
			return err
		}
	}
	ph := timingRec.PhaseTimes()
	attr := &phaseAttribution{
		InitNS:      ph.InitNS,
		LocalNS:     ph.LocalNS,
		GlobalNS:    ph.GlobalNS,
		ReprogramNS: ph.ReprogramNS,
		TotalNS:     ph.TotalNS(),
		Events:      solveEvents,
	}
	if total := float64(attr.TotalNS); total > 0 {
		attr.InitFrac = float64(ph.InitNS) / total
		attr.LocalFrac = float64(ph.LocalNS) / total
		attr.GlobalFrac = float64(ph.GlobalNS) / total
	}
	rep.Phases = attr

	// --- Batched replica runtime: 8 replicas of the G22-mini workload
	// over the shared solver, at 1 batch worker vs one per core. The
	// derived batch_throughput_scaling is the wall-clock ratio; on a
	// multi-core host it approaches min(8, cores), on a single-core CI
	// box it sits near 1. Replica results are identical either way —
	// only the schedule changes.
	const batchReplicas = 8
	batchBench := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				seeds, err := core.SeedRange(int64(i*batchReplicas), batchReplicas)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := deltaSolver.RunBatch(seeds, core.BatchOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	record("batch/G22mini-replicas8-w1", batchBench(1))
	record(fmt.Sprintf("batch/G22mini-replicas8-w%d", batchParWorkers()), batchBench(batchParWorkers()))

	// --- Tempering portfolio: time-to-target on the same G22-mini
	// workload, the exchange-ladder runtime vs the independent-restart
	// early-stop portfolio, both hunting the same target over the same
	// six seeds. The target calibrates from one plain batch — 95% of its
	// best energy (energies are negative, so the scaled target is easier
	// and both arms reliably reach it). The derived
	// tempering_over_portfolio is the wall-clock ratio; values above 1
	// mean the ladder reaches the target first.
	const temperRungs = 6
	ttSeeds, err := core.SeedRange(500, temperRungs)
	if err != nil {
		return err
	}
	calib, err := deltaSolver.RunBatch(ttSeeds, core.BatchOptions{})
	if err != nil {
		return err
	}
	target := calib.BestEnergy * 0.95
	targetSolver, err := deltaSolver.WithRuntime(func(c *core.Config) { c.TargetEnergy = &target })
	if err != nil {
		return err
	}
	record(fmt.Sprintf("portfolio/G22mini-target-replicas%d", temperRungs), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := targetSolver.RunBatch(ttSeeds, core.BatchOptions{EarlyStop: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	record(fmt.Sprintf("temper/G22mini-target-rungs%d", temperRungs), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := targetSolver.RunTempering(ttSeeds, core.TemperingOptions{
				TMin: 0.05, TMax: 0.5, ExchangeEvery: 5,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// --- WAL appends: the durability costs sophied pays per job. The
	// buffered arm is the worker-path append (started/terminal records:
	// frame + buffer under the log mutex, fsync'd by the background
	// flusher); the synced arm is the admission-path group commit (the
	// fsync barrier every accepted submission waits on). The derived
	// wal_overhead relates the buffered append to one G22-mini solve —
	// the journal must never be where a solver job's time goes.
	walDir, err := os.MkdirTemp("", "sophiebench-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	jlog, _, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		return err
	}
	walJob := service.SnapshotJob{
		ID: "j00000001", Tenant: "default",
		Spec: service.JobSpec{Preset: "G22", Replicas: 8, Seed: 7},
	}
	// Like emitsPerOp above: batch the microsecond-scale buffered
	// appends so a -benchtime=1x run times a steady-state span instead
	// of one append's scheduling noise.
	const appendsPerOp = 256
	record("wal/append-buffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < appendsPerOp; j++ {
				if err := jlog.JobStarted(walJob.ID); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	record("wal/append-synced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := jlog.JobSubmitted(walJob); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := jlog.Close(); err != nil {
		return err
	}

	// --- Static-analysis suite: the nine-analyzer shared-inspector run
	// vs the pre-inspector execution model (one full traversal per
	// analyzer) restricted to the original six analyzers. The derived
	// lint_shared9_over_isolated6 ratio is the tentpole guard: one
	// shared walk plus the facts layer must keep the grown suite no
	// slower than six isolated walks ever were. The workload is the
	// repo's two concurrency-heavy packages; parsing and type-checking
	// happen once in the memoized loader, and a warmup run fills the
	// cross-package facts cache, so both arms time steady-state analysis
	// only.
	lintUnits, lintLoader, err := loadLintWorkload()
	if err != nil {
		return err
	}
	shared9 := analysis.Analyzers()
	isolated6 := shared9[:6]
	for _, u := range lintUnits { // warmup: facts cache + any lazy state
		if _, err := analysis.RunUnit(u, shared9, lintLoader); err != nil {
			return err
		}
	}
	record("lint/shared-9analyzers", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, u := range lintUnits {
				if _, err := analysis.RunUnit(u, shared9, lintLoader); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	record("lint/isolated-6analyzers", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, u := range lintUnits {
				if _, err := analysis.RunUnitIsolated(u, isolated6, lintLoader); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	perOp := func(name string) float64 {
		r := byName[name]
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	if d := perOp("solver/G22mini-delta"); d > 0 {
		rep.Derived["solver_speedup_exact_over_delta"] = perOp("solver/G22mini-exact") / d
	}
	if sp := perOp("solver/G22mini-sparse-delta"); sp > 0 {
		rep.Derived["sparse_over_dense_speedup"] = perOp("solver/G22mini-dense-delta") / sp
	}
	// The scaling curve's summary ratio: a 100× node increase on a
	// fixed-degree instance should cost ~100× (linear in nnz), not the
	// 10,000× a dense datapath would pay.
	if t10k := perOp("sparse/scale-n10000"); t10k > 0 {
		rep.Derived["sparse_scale_1m_over_10k"] = perOp("sparse/scale-n1000000") / t10k
	}
	// Crossover margins: dense-over-sparse cost at a density inside the
	// threshold table's sparse region, one per measured tile order. A
	// margin near or below 1.0 flags the per-tile-order thresholds as
	// stale for this host.
	for _, tile := range []int{64, 256} {
		if sp := perOp(fmt.Sprintf("sparse/crossover-tile%d-sparse", tile)); sp > 0 {
			rep.Derived[fmt.Sprintf("sparse_crossover_margin_tile%d", tile)] =
				perOp(fmt.Sprintf("sparse/crossover-tile%d-dense", tile)) / sp
		}
	}
	if iso := perOp("lint/isolated-6analyzers"); iso > 0 {
		rep.Derived["lint_shared9_over_isolated6"] = perOp("lint/shared-9analyzers") / iso
	}
	if bin := perOp("linalg/MulVecBinary64"); bin > 0 {
		rep.Derived["linalg_speedup_mulvec_over_binary"] = perOp("linalg/MulVec64") / bin
	}
	if par := perOp(fmt.Sprintf("batch/G22mini-replicas8-w%d", batchParWorkers())); par > 0 {
		rep.Derived["batch_throughput_scaling"] = perOp("batch/G22mini-replicas8-w1") / par
	}
	if tt := perOp(fmt.Sprintf("temper/G22mini-target-rungs%d", temperRungs)); tt > 0 {
		rep.Derived["tempering_over_portfolio"] =
			perOp(fmt.Sprintf("portfolio/G22mini-target-replicas%d", temperRungs)) / tt
	}
	// wal_overhead is the per-transition journaling tax relative to one
	// solve: a worker records two buffered appends (started + terminal)
	// per job, so this ratio bounds what durability costs the execution
	// path. The fsync'd admission append is reported as its own
	// benchmark but deliberately not ratioed against the solve — its
	// latency belongs to the submitting client, not the worker.
	if d := perOp("solver/G22mini-delta"); d > 0 {
		rep.Derived["wal_overhead"] = perOp("wal/append-buffered") / appendsPerOp / d
	}
	// trace_overhead is the no-op emitter tax on an untraced solve: the
	// events one G22-mini solve emits times the measured cost of one
	// nil-recorder emit, as a fraction of the solve. The acceptance bar
	// is 2% (guarded by the package test); the emitter is a fold update
	// plus one predicted branch, so the honest value sits well under it.
	if d := perOp("solver/G22mini-delta"); d > 0 && solveEvents > 0 {
		emitNS := perOp("trace/emit-noop") / emitsPerOp
		rep.Derived["trace_overhead"] = float64(solveEvents) * emitNS / d
		// trace_overhead_recording is the full ring-retention cost: the
		// traced arm (recorder + progress subscriber) relative to the
		// plain solve.
		rep.Derived["trace_overhead_recording"] = perOp("solver/G22mini-delta-traced")/d - 1
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(out, data, 0o644)
}
