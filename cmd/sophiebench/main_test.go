package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRunEmitsValidReport drives the full suite at -benchtime=1x and
// validates the emitted sophie-bench/v1 document: every expected
// benchmark present with positive timings, and the derived speedups
// computable. Absolute speedup values are asserted only to be positive
// here — the committed BENCH_PR2.json records the measured baseline.
func TestRunEmitsValidReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run("1x", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "sophie-bench/v1" {
		t.Fatalf("unexpected schema %q", rep.Schema)
	}
	want := map[string]bool{
		"linalg/MulVec64":            false,
		"linalg/MulVecBinary64":      false,
		"linalg/AccumulateColumn64":  false,
		"solver/G22mini-exact":       false,
		"solver/G22mini-delta":       false,
		"batch/G22mini-replicas8-w1": false,
		fmt.Sprintf("batch/G22mini-replicas8-w%d", batchParWorkers()): false,
	}
	for _, b := range rep.Benchmarks {
		seen, ok := want[b.Name]
		if !ok {
			t.Fatalf("unexpected benchmark %q", b.Name)
		}
		if seen {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		want[b.Name] = true
		if b.Iterations <= 0 || b.NsPerOp <= 0 {
			t.Fatalf("benchmark %q has non-positive measurements: %+v", b.Name, b)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("benchmark %q missing from report", name)
		}
	}
	for _, key := range []string{"solver_speedup_exact_over_delta", "linalg_speedup_mulvec_over_binary", "batch_throughput_scaling"} {
		if rep.Derived[key] <= 0 {
			t.Fatalf("derived metric %q missing or non-positive: %v", key, rep.Derived[key])
		}
	}
}
