package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRunEmitsValidReport drives the full suite at -benchtime=1x and
// validates the emitted sophie-bench/v1 document: every expected
// benchmark present with positive timings, and the derived speedups
// computable. Absolute speedup values are asserted only to be positive
// here — the committed BENCH_PR2.json records the measured baseline.
func TestRunEmitsValidReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run("1x", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "sophie-bench/v1" {
		t.Fatalf("unexpected schema %q", rep.Schema)
	}
	want := map[string]bool{
		"linalg/MulVec64":                                             false,
		"linalg/MulVecBinary64":                                       false,
		"linalg/AccumulateColumn64":                                   false,
		"solver/G22mini-exact":                                        false,
		"solver/G22mini-delta":                                        false,
		"solver/G22mini-delta-traced":                                 false,
		"solver/G22mini-sparse-delta":                                 false,
		"solver/G22mini-dense-delta":                                  false,
		"sparse/scale-n10000":                                         false,
		"sparse/scale-n100000":                                        false,
		"sparse/scale-n1000000":                                       false,
		"sparse/crossover-tile64-sparse":                              false,
		"sparse/crossover-tile64-dense":                               false,
		"sparse/crossover-tile256-sparse":                             false,
		"sparse/crossover-tile256-dense":                              false,
		"trace/emit-noop":                                             false,
		"trace/emit-recorded":                                         false,
		"batch/G22mini-replicas8-w1":                                  false,
		fmt.Sprintf("batch/G22mini-replicas8-w%d", batchParWorkers()): false,
		"portfolio/G22mini-target-replicas6":                          false,
		"temper/G22mini-target-rungs6":                                false,
		"lint/shared-9analyzers":                                      false,
		"lint/isolated-6analyzers":                                    false,
		"wal/append-buffered":                                         false,
		"wal/append-synced":                                           false,
	}
	for _, b := range rep.Benchmarks {
		seen, ok := want[b.Name]
		if !ok {
			t.Fatalf("unexpected benchmark %q", b.Name)
		}
		if seen {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		want[b.Name] = true
		if b.Iterations <= 0 || b.NsPerOp <= 0 {
			t.Fatalf("benchmark %q has non-positive measurements: %+v", b.Name, b)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("benchmark %q missing from report", name)
		}
	}
	for _, key := range []string{"solver_speedup_exact_over_delta", "linalg_speedup_mulvec_over_binary", "batch_throughput_scaling", "sparse_scale_1m_over_10k", "tempering_over_portfolio"} {
		if rep.Derived[key] <= 0 {
			t.Fatalf("derived metric %q missing or non-positive: %v", key, rep.Derived[key])
		}
	}

	// The sparse datapath's acceptance bar: on the 8.3%-dense G22-mini
	// workload the CSR engine must be at least as fast as the forced
	// dense engine. The honest steady-state ratio (committed baseline)
	// sits well above 1; a 1x run has noise, but a sparse path slower
	// than dense is a regression either way.
	sparseSpeedup, ok := rep.Derived["sparse_over_dense_speedup"]
	if !ok {
		t.Fatal("derived metric sparse_over_dense_speedup missing")
	}
	if sparseSpeedup < 1.0 {
		t.Fatalf("sparse_over_dense_speedup = %v, want >= 1.0", sparseSpeedup)
	}

	// The shared-inspector contract: nine analyzers in one walk must not
	// cost more than the six original analyzers did across six walks.
	// The committed baseline records the honest steady-state ratio; the
	// in-test bar leaves headroom for a 1x run's noise while still
	// catching a regression to per-analyzer traversals (which lands well
	// above it).
	lintRatio, ok := rep.Derived["lint_shared9_over_isolated6"]
	if !ok {
		t.Fatal("derived metric lint_shared9_over_isolated6 missing")
	}
	if lintRatio <= 0 || lintRatio > 1.25 {
		t.Fatalf("lint_shared9_over_isolated6 = %v, want in (0, 1.25]", lintRatio)
	}

	// The trace spine's acceptance bar: the no-op emitter tax on an
	// untraced G22-mini solve stays under 2%.
	overhead, ok := rep.Derived["trace_overhead"]
	if !ok {
		t.Fatal("derived metric trace_overhead missing")
	}
	if overhead <= 0 || overhead > 0.02 {
		t.Fatalf("trace_overhead = %v, want in (0, 0.02]", overhead)
	}
	if _, ok := rep.Derived["trace_overhead_recording"]; !ok {
		t.Fatal("derived metric trace_overhead_recording missing")
	}

	// Crossover margins document threshold headroom per tile order; a 1x
	// run is too noisy to guard the ratio, but the metric must be
	// computable (both arms ran) and positive.
	for _, tile := range []int{64, 256} {
		key := fmt.Sprintf("sparse_crossover_margin_tile%d", tile)
		if rep.Derived[key] <= 0 {
			t.Fatalf("derived metric %q missing or non-positive: %v", key, rep.Derived[key])
		}
	}

	// The durable-service acceptance bar: a buffered journal append (the
	// per-transition cost the worker path pays per job) must be a
	// rounding error next to one G22-mini solve. The bound is generous —
	// the append is ~µs against a ~ms solve — so tripping it means the
	// WAL hot path grew something pathological, not that the host is
	// slow. The fsync'd append is reported but unguarded: its latency is
	// the storage stack's, not ours.
	walOverhead, ok := rep.Derived["wal_overhead"]
	if !ok {
		t.Fatal("derived metric wal_overhead missing")
	}
	if walOverhead <= 0 || walOverhead > 0.05 {
		t.Fatalf("wal_overhead = %v, want in (0, 0.05]", walOverhead)
	}

	// Phase attribution of the instrumented solve: every phase observed,
	// fractions summing to ~1 (reprogramming is absent without the
	// device model).
	if rep.Phases == nil {
		t.Fatal("report has no phases attribution")
	}
	p := rep.Phases
	if p.InitNS <= 0 || p.LocalNS <= 0 || p.GlobalNS <= 0 {
		t.Fatalf("phase attribution has empty phases: %+v", p)
	}
	if p.TotalNS != p.InitNS+p.LocalNS+p.GlobalNS+p.ReprogramNS {
		t.Fatalf("phase total %d does not sum components: %+v", p.TotalNS, p)
	}
	if sum := p.InitFrac + p.LocalFrac + p.GlobalFrac; sum < 0.99 || sum > 1.01 {
		t.Fatalf("phase fractions sum to %v, want ~1: %+v", sum, p)
	}
	if p.Events <= 0 {
		t.Fatalf("phase attribution counted no events: %+v", p)
	}
}
