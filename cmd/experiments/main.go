// Command experiments regenerates the paper's tables and figures
// (Table I-III, Fig. 6-10). By default it runs a reduced "fast"
// protocol on shrunk stand-ins; -full switches to the paper-scale
// protocol (much slower).
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig7 -runs 10
//	experiments -exp table2 -full
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sophie/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment id (table1, fig6, fig7, fig8, fig9, fig10, table2, table3) or 'all'")
		full    = fs.Bool("full", false, "paper-scale protocol (slow)")
		runs    = fs.Int("runs", 0, "runs per data point (0 = scale default)")
		seed    = fs.Int64("seed", 1, "base seed")
		workers = fs.Int("workers", 0, "solver workers (0 = GOMAXPROCS)")
		list    = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	opt := experiments.Options{
		Full:    *full,
		Runs:    *runs,
		Seed:    *seed,
		Workers: *workers,
		Out:     stdout,
	}

	var todo []experiments.Experiment
	if *exp == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			return err
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		start := time.Now()
		fmt.Fprintf(stdout, "\n### %s\n", e.Title)
		if err := e.Run(opt); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(stdout, "(%s finished in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
