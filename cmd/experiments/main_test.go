package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "table2", "table3", "ablation", "scaling"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list missing %q:\n%s", id, out.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table I") || !strings.Contains(out.String(), "finished in") {
		t.Fatalf("table1 output malformed:\n%s", out.String())
	}
}

func TestRunFastAnalytic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table3", "-runs", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SOPHIE (this repo)") {
		t.Fatal("table3 output missing SOPHIE rows")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}
