package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"sophie/internal/analysis"
)

// vetConfig is the JSON unit description `go vet` hands a -vettool
// (the same schema x/tools' unitchecker consumes). Only the fields the
// suite needs are declared; unknown fields are ignored by the decoder.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one build unit described by a `go vet` config
// file: parse the unit's files, type-check against the compiler's
// export data (no source re-typechecking of dependencies), run the
// suite, and write the (empty) facts file the driver expects.
func runVetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "sophielint: parsing %s: %v\n", cfgPath, err)
		return 3
	}

	// The driver requires the facts output file to exist even though
	// this suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "sophielint:", err)
			return 3
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, "sophielint:", err)
			return 3
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}

	// Test-variant units are named like "pkg [pkg.test]"; analyzers
	// match on the plain path.
	path := cfg.ImportPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	unit := &analysis.Unit{
		Dir:     cfg.Dir,
		Path:    path,
		Variant: "vet",
		Fset:    fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
	}
	diags, err := analysis.RunUnit(unit, analysis.Analyzers())
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s:%d:%d: %s (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
