package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"sophie/internal/analysis"
)

// vetConfig is the JSON unit description `go vet` hands a -vettool
// (the same schema x/tools' unitchecker consumes). Only the fields the
// suite needs are declared; unknown fields are ignored by the decoder.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one build unit described by a `go vet` config
// file: parse the unit's files, type-check against the compiler's
// export data (no source re-typechecking of dependencies), compute and
// serialize the unit's FactSet into its vetx output, and — for
// non-dependency units — run the suite with imported packages' facts
// resolved through the driver's PackageVetx table.
func runVetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "sophielint: parsing %s: %v\n", cfgPath, err)
		return 3
	}

	// Dependency units (VetxOnly) exist to produce facts. Only
	// module-local packages carry facts the analyzers consult —
	// standard-library blocking behavior comes from a static table —
	// so everything else gets an empty facts file without the cost of
	// re-typechecking the whole dependency graph on every vet run.
	if cfg.VetxOnly && !vetUnitInModule(cfg.ImportPath) {
		return writeVetx(cfg.VetxOutput, analysis.FactSet{}, stderr)
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg.VetxOutput, analysis.FactSet{}, stderr)
			}
			fmt.Fprintln(stderr, "sophielint:", err)
			return 3
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, analysis.FactSet{}, stderr)
		}
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}

	// Test-variant units are named like "pkg [pkg.test]"; analyzers
	// match on the plain path.
	path := cfg.ImportPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	unit := &analysis.Unit{
		Dir:     cfg.Dir,
		Path:    path,
		Variant: "vet",
		Fset:    fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
	}
	src := &vetxFacts{paths: cfg.PackageVetx, cache: make(map[string]analysis.FactSet)}

	// Serialize this unit's facts for downstream units regardless of
	// whether it is diagnosed itself.
	own := analysis.NewFactView(unit, src).Own()
	if code := writeVetx(cfg.VetxOutput, own, stderr); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: facts only, no diagnostics wanted
	}

	diags, err := analysis.RunUnit(unit, analysis.Analyzers(), src)
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s:%d:%d: %s (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetUnitInModule reports whether the unit belongs to the module the
// vet run was launched from (the only packages whose facts matter —
// the standard library is covered by the static blocking table).
func vetUnitInModule(importPath string) bool {
	cwd, err := os.Getwd()
	if err != nil {
		return true // can't tell; compute facts to be safe
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return true
	}
	modPath, err := moduleNameOf(root)
	if err != nil {
		return true
	}
	importPath = strings.TrimSuffix(importPath, ".test")
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}
	return importPath == modPath || strings.HasPrefix(importPath, modPath+"/")
}

func moduleNameOf(root string) (string, error) {
	l, err := analysis.NewLoader(root)
	if err != nil {
		return "", err
	}
	return l.ModulePath, nil
}

// writeVetx writes the serialized FactSet the driver expects at the
// unit's vetx output path (the file must exist even when empty).
func writeVetx(path string, fs analysis.FactSet, stderr io.Writer) int {
	if path == "" {
		return 0
	}
	data, err := analysis.EncodeFacts(fs)
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}
	return 0
}

// vetxFacts resolves imported packages' FactSets from the vetx files
// the driver recorded in PackageVetx.
type vetxFacts struct {
	paths map[string]string
	cache map[string]analysis.FactSet
}

func (v *vetxFacts) PackageFacts(path string) analysis.FactSet {
	if fs, ok := v.cache[path]; ok {
		return fs
	}
	file, ok := v.paths[path]
	if !ok {
		v.cache[path] = nil
		return nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		v.cache[path] = nil
		return nil
	}
	fs, err := analysis.DecodeFacts(data)
	if err != nil {
		// A vetx file from an older sophielint version (or another
		// tool) is not a fact source; treat as fact-free rather than
		// failing the run.
		fs = nil
	}
	v.cache[path] = fs
	return fs
}
