package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsLintClean is the acceptance gate: the whole module must
// produce zero findings. Any new invariant violation fails the normal
// `go test ./...` run, not just CI's dedicated lint step.
func TestRepoIsLintClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// No package arguments: the runner walks the module root, so the
	// gate covers the whole repo regardless of the test's working
	// directory.
	code := run(nil, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("sophielint found violations (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestVetProtocolProbes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exit %d", code)
	}
	if !strings.HasPrefix(stdout.String(), "sophielint version") {
		t.Fatalf("-V=full output %q lacks version stamp", stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exit %d", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Fatalf("-flags output %q, want []", stdout.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d: %s", code, stderr.String())
	}
	for _, name := range []string{
		"globalrand", "seedplumb", "seedmix", "floateq", "opcount",
		"tracecount", "ctxflow", "lockcheck", "goleak",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestJSONOutput checks the machine-readable finding schema the CI
// problem matcher consumes: an array of {file, line, column, check,
// message} objects with module-relative paths, and a bare [] on a
// clean run.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-checks", "floateq", "../../internal/analysis/testdata/src/floateq"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded from golden package")
	}
	for _, f := range findings {
		if f.Check != "floateq" || f.Line == 0 || f.Column == 0 {
			t.Errorf("malformed finding %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path %q is absolute, want module-relative", f.File)
		}
		if !strings.Contains(f.Message, "floating-point") {
			t.Errorf("finding message %q does not describe the violation", f.Message)
		}
	}

	// A clean run emits the empty array, not empty output.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-json", "-checks", "floateq", "../../internal/metrics"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean run exit %d: %s", code, stderr.String())
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Fatalf("clean -json output %q, want []", stdout.String())
	}
}

func TestFindingsOnGoldenPackage(t *testing.T) {
	// The floateq testdata package must trip the standalone runner:
	// exit 1 with findings on stdout.
	var stdout, stderr bytes.Buffer
	code := run([]string{"-checks", "floateq", "../../internal/analysis/testdata/src/floateq"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "floating-point") {
		t.Fatalf("missing finding in output:\n%s", stdout.String())
	}
}

func TestUnknownCheckRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nosuch"}, &stdout, &stderr); code != 3 {
		t.Fatalf("exit %d, want 3", code)
	}
}
