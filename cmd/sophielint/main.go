// Command sophielint runs the sophie static-analysis suite
// (internal/analysis): globalrand, seedplumb, seedmix, floateq,
// opcount, tracecount, ctxflow, lockcheck, and goleak — the
// machine-checked invariants behind the simulator's determinism, PPA
// accounting, and the runtime's concurrency contracts. See DESIGN.md
// "Invariants" for what each check enforces.
//
// It runs two ways:
//
// Standalone, walking the module (the Makefile's `make lint` path):
//
//	sophielint            # whole module, like ./...
//	sophielint ./internal/core ./cmd/...
//	sophielint -checks globalrand,floateq ./...
//	sophielint -json ./...
//
// Or as a vet tool, speaking the `go vet` driver protocol (-V=full,
// -flags, and JSON config files), so findings integrate with the
// standard build cache:
//
//	go vet -vettool=$(pwd)/bin/sophielint ./...
//
// Exit status: 0 clean, 1 findings (standalone), 2 findings (vet
// protocol, matching x/tools unitchecker), >2 operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sophie/internal/analysis"
)

// version is the vet driver's cache key (-V=full): it must change
// whenever analyzer behavior changes, or stale cached vet results
// would mask new findings. 1.1.0: shared inspector, facts layer,
// ctxflow/lockcheck/goleak.
const version = "sophielint version 1.1.0"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The `go vet` driver probes its tool before use: `-V=full` asks
	// for a version stamp (cache key), `-flags` for the supported
	// analyzer flags as JSON.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Fprintln(stdout, version)
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetUnit(args[0], stderr)
		}
	}
	return runStandalone(args, stdout, stderr)
}

// runStandalone loads and analyzes package directories from the
// working tree.
func runStandalone(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sophielint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checks = fs.String("checks", "", "comma-separated analyzer subset (default: all)")
		list   = fs.Bool("list", false, "list analyzers and exit")
		asJSON = fs.Bool("json", false, "emit findings as a JSON array on stdout")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sophielint [-checks a,b] [-json] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}
	dirs, err := expandPatterns(loader.ModuleRoot, cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}

	var all []analysis.Diagnostic
	for _, dir := range dirs {
		units, err := loader.LoadDir(dir, "")
		if err != nil {
			fmt.Fprintln(stderr, "sophielint:", err)
			return 3
		}
		for _, u := range units {
			diags, err := analysis.RunUnit(u, suite, loader)
			if err != nil {
				fmt.Fprintln(stderr, "sophielint:", err)
				return 3
			}
			all = append(all, diags...)
		}
	}
	if *asJSON {
		if err := writeJSON(stdout, loader.ModuleRoot, all); err != nil {
			fmt.Fprintln(stderr, "sophielint:", err)
			return 3
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, formatDiag(loader.ModuleRoot, d))
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "sophielint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

// jsonDiag is the machine-readable finding schema emitted by -json;
// paths are module-relative, matching the plain-text output.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// writeJSON emits every finding as one JSON array (an empty run emits
// `[]`, so consumers never special-case the clean path).
func writeJSON(w io.Writer, root string, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		out = append(out, jsonDiag{
			File:    file,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// formatDiag prints module-relative paths so output is stable across
// checkouts.
func formatDiag(root string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

// expandPatterns resolves command-line package patterns to directories:
// "" or "./..." walks the whole module, "dir/..." walks a subtree, and
// anything else is a single directory.
func expandPatterns(root, cwd string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		return analysis.ModulePackageDirs(root)
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(ds ...string) {
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	for _, p := range patterns {
		base := strings.TrimSuffix(p, "...")
		recursive := base != p
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = cwd
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if recursive {
			sub, err := analysis.ModulePackageDirs(base)
			if err != nil {
				return nil, err
			}
			add(sub...)
			continue
		}
		info, err := os.Stat(base)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", base)
		}
		add(base)
	}
	return dirs, nil
}
