// Command sophielint runs the sophie static-analysis suite
// (internal/analysis): globalrand, seedplumb, floateq, and opcount —
// the machine-checked invariants behind the simulator's determinism
// and PPA accounting. See DESIGN.md "Invariants" for what each check
// enforces.
//
// It runs two ways:
//
// Standalone, walking the module (the Makefile's `make lint` path):
//
//	sophielint            # whole module, like ./...
//	sophielint ./internal/core ./cmd/...
//	sophielint -checks globalrand,floateq ./...
//
// Or as a vet tool, speaking the `go vet` driver protocol (-V=full,
// -flags, and JSON config files), so findings integrate with the
// standard build cache:
//
//	go vet -vettool=$(pwd)/bin/sophielint ./...
//
// Exit status: 0 clean, 1 findings (standalone), 2 findings (vet
// protocol, matching x/tools unitchecker), >2 operational errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sophie/internal/analysis"
)

const version = "sophielint version 1.0.0"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The `go vet` driver probes its tool before use: `-V=full` asks
	// for a version stamp (cache key), `-flags` for the supported
	// analyzer flags as JSON.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Fprintln(stdout, version)
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetUnit(args[0], stderr)
		}
	}
	return runStandalone(args, stdout, stderr)
}

// runStandalone loads and analyzes package directories from the
// working tree.
func runStandalone(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sophielint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checks = fs.String("checks", "", "comma-separated analyzer subset (default: all)")
		list   = fs.Bool("list", false, "list analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sophielint [-checks a,b] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}
	dirs, err := expandPatterns(loader.ModuleRoot, cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "sophielint:", err)
		return 3
	}

	found := 0
	for _, dir := range dirs {
		units, err := loader.LoadDir(dir, "")
		if err != nil {
			fmt.Fprintln(stderr, "sophielint:", err)
			return 3
		}
		for _, u := range units {
			diags, err := analysis.RunUnit(u, suite)
			if err != nil {
				fmt.Fprintln(stderr, "sophielint:", err)
				return 3
			}
			for _, d := range diags {
				found++
				fmt.Fprintln(stdout, formatDiag(loader.ModuleRoot, d))
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(stderr, "sophielint: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// formatDiag prints module-relative paths so output is stable across
// checkouts.
func formatDiag(root string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

// expandPatterns resolves command-line package patterns to directories:
// "" or "./..." walks the whole module, "dir/..." walks a subtree, and
// anything else is a single directory.
func expandPatterns(root, cwd string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		return analysis.ModulePackageDirs(root)
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(ds ...string) {
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	for _, p := range patterns {
		base := strings.TrimSuffix(p, "...")
		recursive := base != p
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = cwd
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if recursive {
			sub, err := analysis.ModulePackageDirs(base)
			if err != nil {
				return nil, err
			}
			add(sub...)
			continue
		}
		info, err := os.Stat(base)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", base)
		}
		add(base)
	}
	return dirs, nil
}
