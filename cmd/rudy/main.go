// Command rudy generates benchmark instances: graphs in GSET text
// format covering the families the paper evaluates (Table I) —
// Rudy-style sparse random graphs, complete K-graphs with random
// weights, toroidal grids, planted-partition block models — plus named
// presets for the paper's exact instances, and planted-satisfiable
// random k-SAT emitted as problem-spec JSON for `sophie -problem`.
//
// Usage:
//
//	rudy -type random -n 800 -m 19176 -weights unit -seed 1 > g.txt
//	rudy -preset G22 -o g22.txt
//	rudy -type complete -n 100 -weights pm1
//	rudy -type planted -n 200 -pin 0.2 -pout 0.02 > sbm.txt
//	rudy -type ksat -n 50 -m 150 -k 3 | sophie -problem -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"sophie/internal/graph"
	"sophie/internal/problem"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rudy:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rudy", flag.ContinueOnError)
	var (
		typ     = fs.String("type", "random", "instance family: random | complete | toroidal | planted | ksat")
		n       = fs.Int("n", 100, "number of nodes (random/complete/planted) or variables (ksat)")
		m       = fs.Int("m", 0, "number of edges (random; default 5% density) or clauses (ksat; default 4n)")
		w       = fs.Int("w", 8, "torus width (toroidal)")
		h       = fs.Int("h", 8, "torus height (toroidal)")
		pin     = fs.Float64("pin", 0.2, "intra-community edge probability (planted)")
		pout    = fs.Float64("pout", 0.02, "cross-community edge probability (planted)")
		k       = fs.Int("k", 3, "clause width (ksat)")
		weights = fs.String("weights", "unit", "edge weights: unit | pm1 | uniform")
		seed    = fs.Int64("seed", 1, "generator seed")
		preset  = fs.String("preset", "", "named instance: G1 | G22 | K100 (overrides other flags)")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	var err error
	if *preset != "" {
		switch *preset {
		case "G1":
			g = graph.G1Standin()
		case "G22":
			g = graph.G22Standin()
		case "K100":
			g = graph.KGraph(100)
		default:
			return fmt.Errorf("unknown preset %q (G1, G22, K100)", *preset)
		}
	} else {
		var scheme graph.WeightScheme
		switch *weights {
		case "unit":
			scheme = graph.WeightUnit
		case "pm1":
			scheme = graph.WeightPM1
		case "uniform":
			scheme = graph.WeightUniform
		default:
			return fmt.Errorf("unknown weight scheme %q (unit, pm1, uniform)", *weights)
		}
		switch *typ {
		case "random":
			edges := *m
			if edges == 0 {
				edges = *n * (*n - 1) / 40 // 5% density default
			}
			g, err = graph.Random(*n, edges, scheme, *seed)
			if err != nil {
				return err
			}
		case "complete":
			g = graph.Complete(*n, scheme, *seed)
		case "toroidal":
			g = graph.Toroidal(*w, *h, *seed)
		case "planted":
			var sides []int
			g, sides, err = graph.PlantedPartition(*n, *pin, *pout, *seed)
			if err != nil {
				return err
			}
			// The planted ground truth goes to stderr so the GSET stream
			// stays pipeable into sophie.
			half := 0
			for _, s := range sides {
				if s == 0 {
					half++
				}
			}
			fmt.Fprintf(os.Stderr, "rudy: planted partition %d/%d nodes (pin %g, pout %g)\n",
				half, *n-half, *pin, *pout)
		case "ksat":
			return writeKSAT(stdout, *out, *n, *m, *k, *seed)
		default:
			return fmt.Errorf("unknown type %q (random, complete, toroidal, planted, ksat)", *typ)
		}
	}

	if *out == "" {
		return graph.Write(stdout, g)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := graph.Write(f, g); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	// A failed close on the write path loses data; it must not be dropped.
	return f.Close()
}

// writeKSAT emits a planted-satisfiable k-SAT instance as problem-spec
// JSON ({"type":"maxsat",...}), directly consumable by
// `sophie -problem -` or POST /v1/jobs. The planted optimum (all m
// clauses satisfiable) goes to stderr.
func writeKSAT(stdout io.Writer, outFile string, vars, clauses, width int, seed int64) error {
	if clauses == 0 {
		clauses = 4 * vars
	}
	p, _, err := problem.RandomKSAT(vars, clauses, width, seed)
	if err != nil {
		return err
	}
	spec := struct {
		Type    string `json:"type"`
		Vars    int    `json:"vars"`
		Clauses []struct {
			Lits []int `json:"lits"`
		} `json:"clauses"`
	}{Type: "maxsat", Vars: p.Vars}
	for _, c := range p.Clauses {
		spec.Clauses = append(spec.Clauses, struct {
			Lits []int `json:"lits"`
		}{Lits: c.Lits})
	}
	data, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	fmt.Fprintf(os.Stderr, "rudy: planted-satisfiable %d-SAT, %d vars, %d clauses (optimum %d)\n",
		width, vars, clauses, clauses)
	if outFile == "" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(outFile, data, 0o644)
}
