// Command rudy generates benchmark graphs in GSET text format, covering
// the instance families the paper evaluates (Table I): Rudy-style sparse
// random graphs, complete K-graphs with random weights, and toroidal
// grids, plus named presets for the paper's exact instances.
//
// Usage:
//
//	rudy -type random -n 800 -m 19176 -weights unit -seed 1 > g.txt
//	rudy -preset G22 -o g22.txt
//	rudy -type complete -n 100 -weights pm1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sophie/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rudy:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rudy", flag.ContinueOnError)
	var (
		typ     = fs.String("type", "random", "graph family: random | complete | toroidal")
		n       = fs.Int("n", 100, "number of nodes (random/complete)")
		m       = fs.Int("m", 0, "number of edges (random; default 5% density)")
		w       = fs.Int("w", 8, "torus width (toroidal)")
		h       = fs.Int("h", 8, "torus height (toroidal)")
		weights = fs.String("weights", "unit", "edge weights: unit | pm1 | uniform")
		seed    = fs.Int64("seed", 1, "generator seed")
		preset  = fs.String("preset", "", "named instance: G1 | G22 | K100 (overrides other flags)")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	var err error
	if *preset != "" {
		switch *preset {
		case "G1":
			g = graph.G1Standin()
		case "G22":
			g = graph.G22Standin()
		case "K100":
			g = graph.KGraph(100)
		default:
			return fmt.Errorf("unknown preset %q (G1, G22, K100)", *preset)
		}
	} else {
		var scheme graph.WeightScheme
		switch *weights {
		case "unit":
			scheme = graph.WeightUnit
		case "pm1":
			scheme = graph.WeightPM1
		case "uniform":
			scheme = graph.WeightUniform
		default:
			return fmt.Errorf("unknown weight scheme %q (unit, pm1, uniform)", *weights)
		}
		switch *typ {
		case "random":
			edges := *m
			if edges == 0 {
				edges = *n * (*n - 1) / 40 // 5% density default
			}
			g, err = graph.Random(*n, edges, scheme, *seed)
			if err != nil {
				return err
			}
		case "complete":
			g = graph.Complete(*n, scheme, *seed)
		case "toroidal":
			g = graph.Toroidal(*w, *h, *seed)
		default:
			return fmt.Errorf("unknown type %q (random, complete, toroidal)", *typ)
		}
	}

	if *out == "" {
		return graph.Write(stdout, g)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := graph.Write(f, g); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	// A failed close on the write path loses data; it must not be dropped.
	return f.Close()
}
