package main

import (
	"bytes"
	"strings"
	"testing"

	"sophie/internal/graph"
)

func TestRunRandom(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-type", "random", "-n", "30", "-m", "60", "-weights", "pm1", "-seed", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 30 || g.M() != 60 {
		t.Fatalf("generated %d/%d", g.N(), g.M())
	}
}

func TestRunDefaultDensity(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "40"}, &buf); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 40*39/40 {
		t.Fatalf("default density produced %d edges", g.M())
	}
}

func TestRunComplete(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-type", "complete", "-n", "10", "-weights", "uniform"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "10 45\n") {
		t.Fatalf("K10 header wrong: %q", buf.String()[:10])
	}
}

func TestRunToroidal(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-type", "toroidal", "-w", "4", "-h", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 {
		t.Fatalf("torus has %d nodes", g.N())
	}
}

func TestRunPresets(t *testing.T) {
	for preset, nodes := range map[string]int{"G1": 800, "G22": 2000, "K100": 100} {
		var buf bytes.Buffer
		if err := run([]string{"-preset", preset}, &buf); err != nil {
			t.Fatal(err)
		}
		g, err := graph.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != nodes {
			t.Fatalf("preset %s gave %d nodes", preset, g.N())
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-preset", "nope"},
		{"-type", "nope"},
		{"-weights", "nope"},
		{"-type", "random", "-n", "4", "-m", "100"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
