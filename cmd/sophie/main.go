// Command sophie solves a max-cut instance — or any problem-spec the
// QUBO/Ising compiler front end accepts — with the SOPHIE modified
// PRIS algorithm (functional simulation) and reports the cut or domain
// objective, energy, iteration counts, and operation tallies.
//
// Usage:
//
//	sophie -graph g22.txt -phi 0.1 -alpha 0 -global 500
//	sophie -preset K100 -runs 5 -device
//	rudy -preset G1 | sophie -phi 0.2
//	sophie -problem spec.json -global 200
//	rudy -type ksat -n 50 -m 150 | sophie -problem -
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/linalg"
	"sophie/internal/metrics"
	"sophie/internal/opcm"
	"sophie/internal/problem"
	"sophie/internal/tiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sophie:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("sophie", flag.ContinueOnError)
	var (
		graphFile = fs.String("graph", "", "GSET-format graph file ('-' or empty reads stdin)")
		preset    = fs.String("preset", "", "named instance: G1 | G22 | K100")
		probFile  = fs.String("problem", "", "problem-spec JSON file ('-' reads stdin); see README \"Problem types\"")
		tile      = fs.Int("tile", 64, "tile size (OPCM array order)")
		local     = fs.Int("local", 10, "local iterations per global iteration")
		global    = fs.Int("global", 500, "global iterations")
		frac      = fs.Float64("tiles", 1.0, "fraction of tile pairs selected per global iteration")
		phi       = fs.Float64("phi", 0.1, "noise standard deviation")
		alpha     = fs.Float64("alpha", 0, "eigenvalue dropout factor")
		phiEnd    = fs.Float64("phi-end", 0, "anneal noise geometrically down to this value (0 = constant)")
		rank      = fs.Int("rank", 0, "rank-limited Lanczos transform (0 = full eigendecomposition)")
		skip      = fs.Bool("skip-transform", false, "use C = K without eigen preprocessing")
		majority  = fs.Bool("majority", false, "majority spin update instead of stochastic")
		device    = fs.Bool("device", false, "run MVMs through the OPCM device model")
		runs      = fs.Int("runs", 1, "independent jobs run sequentially (seeds seed, seed+1, ...)")
		replicas  = fs.Int("replicas", 0, "batched replica runtime: run this many replicas concurrently (0 = sequential -runs mode)")
		batchW    = fs.Int("batch-workers", 0, "concurrent replicas in -replicas mode (0 = GOMAXPROCS)")
		target    = fs.Float64("target", 0, "stop a job once its best energy reaches this value (0 = disabled)")
		portfolio = fs.Bool("portfolio", false, "with -replicas and -target: first replica reaching the target cancels the rest")
		tempering = fs.Bool("tempering", false, "with -replicas: couple the replicas into a parallel-tempering ladder (replica 0 coldest)")
		tmin      = fs.Float64("tmin", 0.05, "coldest tempering noise level (with -tempering)")
		tmax      = fs.Float64("tmax", 0.5, "hottest tempering noise level (with -tempering)")
		exchEvery = fs.Int("exchange-every", 1, "tempering exchange period in global iterations (with -tempering)")
		seed      = fs.Int64("seed", 1, "base seed")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		showOps   = fs.Bool("ops", false, "print operation counters")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget for the whole solve (0 = unbounded); expiry stops runs at their next global-iteration boundary with best-so-far results")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		g     *graph.Graph
		prob  problem.Problem
		model *ising.Model
	)
	if *probFile != "" {
		if *graphFile != "" || *preset != "" {
			return fmt.Errorf("-problem cannot combine with -graph or -preset")
		}
		var err error
		prob, model, err = loadProblem(*probFile, stdin, stdout)
		if err != nil {
			return err
		}
	} else {
		var err error
		g, err = loadGraph(*graphFile, *preset, stdin)
		if err != nil {
			return err
		}
		model = ising.FromMaxCut(g)
	}

	cfg := core.DefaultConfig()
	cfg.TileSize = *tile
	cfg.LocalIters = *local
	cfg.GlobalIters = *global
	cfg.TileFraction = *frac
	cfg.Phi = *phi
	cfg.Alpha = *alpha
	cfg.PhiEnd = *phiEnd
	cfg.TransformRank = *rank
	cfg.SkipTransform = *skip
	cfg.Workers = *workers
	if *majority {
		cfg.SpinUpdate = core.SpinUpdateMajority
	}
	if *device {
		cfg.Engine = func(tiles []*linalg.Matrix) (tiling.Engine, error) {
			return opcm.NewEngine(tiles, 0, opcm.DefaultParams())
		}
	}
	if *target != 0 {
		cfg.TargetEnergy = target
	}
	if *replicas < 0 {
		return fmt.Errorf("-replicas must be >= 0, got %d", *replicas)
	}
	if *portfolio && (*replicas <= 0 || *target == 0) {
		return fmt.Errorf("-portfolio requires -replicas and -target")
	}
	if *tempering && *replicas < 2 {
		return fmt.Errorf("-tempering requires -replicas >= 2 (one per ladder rung)")
	}
	if *tempering && *portfolio {
		return fmt.Errorf("-tempering and -portfolio cannot combine (a -target alone stops the whole ladder)")
	}

	if prob != nil {
		if !model.HasDense() && !*skip {
			return fmt.Errorf("problem lowers to %d variables and is sparse-built; pass -skip-transform", model.N())
		}
		if init, ok := prob.(problem.Initializer); ok {
			if s0 := init.InitialSpins(); s0 != nil {
				cfg.InitialSpins = s0
			}
		}
	}

	// scoreOf is the per-result domain figure: the cut value for graph
	// inputs, the decoded objective for problem specs.
	scoreLabel, scoreOf := "cut", func(spins []int8) float64 { return g.CutValue(spins) }
	if prob != nil {
		scoreLabel = "objective"
		scoreOf = func(spins []int8) float64 {
			sol, err := prob.Decode(spins)
			if err != nil {
				return math.NaN()
			}
			return sol.Objective
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if g != nil {
		fmt.Fprintf(stdout, "graph: %d nodes, %d edges (density %.4f)\n", g.N(), g.M(), g.Density())
	}
	start := time.Now()
	solver, err := core.NewSolver(model, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "preprocessing: %v (tile %d, %d pairs)\n",
		time.Since(start).Round(time.Millisecond), *tile, solver.Grid().PairCount())

	if *replicas > 0 {
		batchStart := time.Now()
		seeds, err := core.SeedRange(*seed, *replicas)
		if err != nil {
			return err
		}
		batchOpts := core.BatchOptions{
			Workers:   *batchW,
			EarlyStop: *portfolio,
		}
		if *tempering {
			batchOpts.Tempering = &core.TemperingOptions{TMin: *tmin, TMax: *tmax, ExchangeEvery: *exchEvery}
		}
		batch, err := solver.RunBatchCtx(ctx, seeds, batchOpts)
		if err != nil {
			return err
		}
		wall := time.Since(batchStart)
		timedOut := ctx.Err() != nil
		for j, res := range batch.Results {
			status := ""
			switch {
			case res.ReachedTarget:
				status = " (reached target)"
			case res.Stopped && timedOut:
				status = " (stopped by timeout)"
			case res.Stopped:
				status = " (cancelled by portfolio stop)"
			}
			label := "replica"
			rung := ""
			if ts := batch.Tempering; ts != nil {
				label = "rung"
				rung = fmt.Sprintf(" (phi %.3f)", ts.Phis[j])
			}
			fmt.Fprintf(stdout, "%s %d%s: %s %.0f, energy %.0f, best at global iter %d%s\n",
				label, j, rung, scoreLabel, scoreOf(res.BestSpins), res.BestEnergy, res.BestGlobalIter, status)
		}
		if ts := batch.Tempering; ts != nil {
			fmt.Fprintf(stdout, "tempering: %d/%d exchanges accepted (rate %.2f) on ladder [%.3f, %.3f]\n",
				ts.Accepted, ts.Attempted, ts.ExchangeRate, *tmin, *tmax)
		}
		fmt.Fprintf(stdout, "batch: best %s %.0f (replica %d), energy best %.0f / median %.0f / mean %.1f, wall %v\n",
			scoreLabel, scoreOf(batch.Best().BestSpins), batch.BestIndex,
			batch.BestEnergy, batch.MedianEnergy, batch.MeanEnergy,
			wall.Round(time.Millisecond))
		if cfg.TargetEnergy != nil {
			fmt.Fprintf(stdout, "batch: %d/%d replicas reached the target (success probability %.2f)\n",
				batch.Succeeded, *replicas, batch.SuccessProb)
		}
		if timedOut {
			fmt.Fprintf(stdout, "batch: timeout %v expired — %d/%d replicas stopped early with best-so-far results\n",
				*timeout, batch.Stopped, *replicas)
		}
		if *showOps {
			fmt.Fprintf(stdout, "operation counts (all replicas):\n%s", batch.Ops.String())
		}
		if prob != nil {
			printSolution(stdout, prob, batch.Best().BestSpins)
		}
		return nil
	}

	// Track the best run by energy: lower energy is always the better
	// Hamiltonian state regardless of whether the domain objective is
	// min-better (TSP) or max-better (cut, MAX-SAT).
	bestEnergy := math.Inf(1)
	var bestSpins []int8
	ran := 0
	var totalOps metrics.OpCounts
	for r := 0; r < *runs; r++ {
		jobStart := time.Now()
		res, err := solver.RunCtx(ctx, *seed+int64(r))
		if err != nil {
			return err
		}
		if res.BestEnergy < bestEnergy {
			bestEnergy = res.BestEnergy
			bestSpins = res.BestSpins
		}
		totalOps.Add(res.Ops)
		ran++
		status := ""
		if res.Stopped {
			status = " (stopped by timeout)"
		}
		fmt.Fprintf(stdout, "job %d: %s %.0f, energy %.0f, best at global iter %d, wall %v%s\n",
			r, scoreLabel, scoreOf(res.BestSpins), res.BestEnergy, res.BestGlobalIter, time.Since(jobStart).Round(time.Millisecond), status)
		if res.Stopped {
			// The budget covers the whole solve; later jobs would start
			// already expired and report nothing useful.
			fmt.Fprintf(stdout, "timeout %v expired: skipping %d remaining job(s)\n", *timeout, *runs-ran)
			break
		}
	}
	bestScore := 0.0
	if bestSpins != nil {
		bestScore = scoreOf(bestSpins)
	}
	fmt.Fprintf(stdout, "best %s over %d job(s): %.0f\n", scoreLabel, ran, bestScore)
	if *showOps {
		fmt.Fprintf(stdout, "operation counts (all jobs):\n%s", totalOps.String())
	}
	if prob != nil {
		printSolution(stdout, prob, bestSpins)
	}
	return nil
}

// loadProblem reads and compiles a problem-spec JSON document,
// printing the lowering summary.
func loadProblem(file string, stdin io.Reader, stdout io.Writer) (problem.Problem, *ising.Model, error) {
	var data []byte
	var err error
	if file == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(file)
	}
	if err != nil {
		return nil, nil, err
	}
	p, err := problem.ParseSpec(data)
	if err != nil {
		return nil, nil, err
	}
	c, err := problem.Compile(p)
	if err != nil {
		return nil, nil, err
	}
	field := ""
	if c.Model.HasField() {
		field = ", with field"
	}
	fmt.Fprintf(stdout, "problem: %s, lowered to %d spins%s (energy offset %g)\n",
		p.Type(), c.Model.N(), field, c.Offset)
	return p, c.Model, nil
}

// printSolution reports the decoded domain answer of the best spins.
func printSolution(stdout io.Writer, prob problem.Problem, spins []int8) {
	if spins == nil {
		return
	}
	sol, err := prob.Decode(spins)
	if err != nil {
		fmt.Fprintf(stdout, "solution: decode failed: %v\n", err)
		return
	}
	feas := "feasible"
	if !sol.Feasible {
		feas = "INFEASIBLE"
	}
	fmt.Fprintf(stdout, "solution: objective %g, %s\n", sol.Objective, feas)
	for _, v := range sol.Violations {
		fmt.Fprintf(stdout, "  violation: %s\n", v)
	}
	if data, err := json.Marshal(sol.Assignment); err == nil {
		fmt.Fprintf(stdout, "  assignment: %s\n", data)
	}
}

func loadGraph(file, preset string, stdin io.Reader) (*graph.Graph, error) {
	if preset != "" {
		switch preset {
		case "G1":
			return graph.G1Standin(), nil
		case "G22":
			return graph.G22Standin(), nil
		case "K100":
			return graph.KGraph(100), nil
		default:
			return nil, fmt.Errorf("unknown preset %q", preset)
		}
	}
	if file == "" || file == "-" {
		return graph.Read(stdin)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	// Read path: a close error cannot corrupt anything already parsed.
	defer func() { _ = f.Close() }()
	return graph.Read(f)
}
