package main

import (
	"bytes"
	"strings"
	"testing"

	"sophie/internal/graph"
)

func TestRunPreset(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-preset", "K100", "-tile", "32", "-global", "20", "-runs", "2", "-ops", "-phi", "0.2"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"graph: 100 nodes", "job 0:", "job 1:", "best cut over 2 job(s)", "mvm(1b)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunReplicasBatch(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-preset", "K100", "-tile", "32", "-global", "20",
		"-replicas", "3", "-batch-workers", "2", "-ops", "-phi", "0.2"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"replica 0:", "replica 2:", "batch: best cut", "median", "mvm(1b)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunReplicasPortfolio(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-preset", "K100", "-tile", "32", "-global", "40", "-phi", "0.2",
		"-replicas", "4", "-target", "-100", "-portfolio"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replicas reached the target") {
		t.Fatalf("portfolio run missing success summary:\n%s", out.String())
	}
	// -portfolio without -replicas/-target must be rejected.
	if err := run([]string{"-preset", "K100", "-portfolio"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("-portfolio without -replicas/-target must fail")
	}
	// A negative replica count must be rejected, not silently ignored.
	if err := run([]string{"-preset", "K100", "-replicas", "-2"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("-replicas -2 must fail")
	}
}

func TestRunStdin(t *testing.T) {
	g, err := graph.Random(40, 120, graph.WeightUnit, 9)
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	if err := graph.Write(&in, g); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-tile", "16", "-global", "15"}, &in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "graph: 40 nodes") {
		t.Fatalf("stdin path failed:\n%s", out.String())
	}
}

func TestRunDeviceAndFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-preset", "K100", "-tile", "32", "-global", "10",
		"-device", "-majority", "-skip-transform", "-tiles", "0.5"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "best cut") {
		t.Fatal("device run produced no summary")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-preset", "nope"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("unknown preset must fail")
	}
	if err := run([]string{"-graph", "/does/not/exist"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing file must fail")
	}
	if err := run([]string{"-preset", "K100", "-phi", "-3"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("invalid solver config must fail")
	}
	if err := run([]string{}, strings.NewReader("garbage"), &out); err == nil {
		t.Fatal("bad stdin graph must fail")
	}
}

func TestRunRankAndAnneal(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-preset", "K100", "-tile", "32", "-global", "15",
		"-rank", "20", "-phi", "0.4", "-phi-end", "0.05"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "best cut") {
		t.Fatal("rank/anneal run produced no summary")
	}
}

// TestRunTimeoutSequential bounds a long sequential solve: the first
// job stops at an iteration boundary, later jobs are skipped, and the
// stop is reported distinctly from a normal finish.
func TestRunTimeoutSequential(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-preset", "K100", "-tile", "32", "-global", "5000000",
		"-local", "1", "-runs", "3", "-timeout", "100ms"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"(stopped by timeout)", "skipping 2 remaining job(s)", "best cut over 1 job(s)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunTimeoutReplicas bounds a long batch: every replica stops and
// the batch summary reports the expired budget.
func TestRunTimeoutReplicas(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-preset", "K100", "-tile", "32", "-global", "5000000",
		"-local", "1", "-replicas", "2", "-timeout", "100ms"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"(stopped by timeout)", "replicas stopped early"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}
