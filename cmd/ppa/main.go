// Command ppa evaluates the SOPHIE power/performance/area model for a
// workload on a hardware design and prints the full report with time,
// energy, and area breakdowns — the model behind Fig. 9 and Tables
// II/III.
//
// Usage:
//
//	ppa -nodes 16384 -accel 1 -batch 100 -global 50 -tiles 0.74
//	ppa -nodes 32768 -tile 128 -batch 1000
//	ppa -nodes 2000 -pes 16 -global 5 -sim -trace   # discrete schedule walk
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sophie/internal/arch"
	"sophie/internal/sched"
	"sophie/internal/tiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppa:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ppa", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 16384, "Ising problem order")
		accel    = fs.Int("accel", 1, "number of accelerators")
		chiplets = fs.Int("chiplets", 4, "OPCM chiplets per accelerator")
		pes      = fs.Int("pes", 64, "PEs per chiplet")
		tile     = fs.Int("tile", 64, "tile size")
		batch    = fs.Int("batch", 100, "jobs per batch")
		local    = fs.Int("local", 10, "local iterations per global")
		global   = fs.Int("global", 50, "global iterations")
		frac     = fs.Float64("tiles", 0.74, "tile selection fraction")
		sim      = fs.Bool("sim", false, "also walk the concrete schedule (discrete simulation)")
		trace    = fs.Bool("trace", false, "with -sim: print the round timeline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	d := arch.Design{
		Hardware: sched.Hardware{
			Accelerators:     *accel,
			ChipletsPerAccel: *chiplets,
			PEsPerChiplet:    *pes,
			TileSize:         *tile,
		},
		Params: arch.DefaultParams(),
	}
	rep, err := arch.Evaluate(d, arch.Workload{
		Name:         fmt.Sprintf("n=%d", *nodes),
		Nodes:        *nodes,
		Batch:        *batch,
		LocalIters:   *local,
		GlobalIters:  *global,
		TileFraction: *frac,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "workload: %s, batch %d, %dx%d local/global iters, %.0f%% tiles\n",
		rep.Workload.Name, rep.Workload.Batch, rep.Workload.LocalIters, rep.Workload.GlobalIters,
		100*rep.Workload.TileFraction)
	fmt.Fprintf(stdout, "hardware: %d accel x %d chiplets x %d PEs, tile %d (%d total PEs, capacity %d couplings)\n",
		*accel, *chiplets, *pes, *tile, d.Hardware.TotalPEs(), d.Hardware.Capacity())
	fmt.Fprintf(stdout, "schedule: %d pairs, %d selected/iter, %d rounds/iter, resident=%v, %.0f programs\n",
		rep.Schedule.Pairs, rep.Schedule.SelectedPairs, rep.Schedule.RoundsPerIter,
		rep.Schedule.Resident, rep.Schedule.ProgramsTotal)
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "time:   total %.4g s, per job %.4g s (bound by %s)\n",
		rep.TimeTotalS, rep.TimePerJobS, rep.Time.BoundBy)
	fmt.Fprintf(stdout, "        fill %.3g s | compute %.3g s | sync %.3g s | program %.3g s | cross-accel %.3g s\n",
		rep.Time.FillS, rep.Time.ComputeS, rep.Time.SyncS, rep.Time.ProgramS, rep.Time.CrossAccelS)
	fmt.Fprintf(stdout, "energy: total %.4g J, per job %.4g J, avg power %.4g W\n",
		rep.EnergyTotalJ, rep.EnergyPerJobJ, rep.AvgPowerW)
	e := rep.Energy
	fmt.Fprintf(stdout, "        laser %.3g | EO %.3g | ADC %.3g | SRAM %.3g | DRAM %.3g | bus %.3g | program %.3g | ctrl %.3g | glue %.3g (J)\n",
		e.LaserJ, e.EOJ, e.ADCJ, e.SRAMJ, e.DRAMJ, e.BusJ, e.ProgramJ, e.ControlJ, e.GlueJ)
	a := rep.Area
	fmt.Fprintf(stdout, "area:   total %.4g mm² (%d accelerator(s))\n", rep.AreaMM2, *accel)
	fmt.Fprintf(stdout, "        OPCM %.3g | SRAM %.3g | DRAM %.3g | laser %.3g | controller %.3g (mm² per accel)\n",
		a.OPCMChipletsMM2, a.SRAMMM2, a.DRAMMM2, a.LaserMM2, a.ControllerMM2)
	fmt.Fprintf(stdout, "EDAP:   %.4g J·s·mm² per job\n", rep.EDAP)

	feas, err := arch.CheckFeasibility(rep)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "physical: laser %.3g W/chiplet | density %.3g W/mm² | program surge %.3g W\n",
		feas.LaserPowerPerChipletW, feas.AvgPowerDensityWPerMM2, feas.ProgramSurgeW)
	for _, warn := range feas.Warnings {
		fmt.Fprintf(stdout, "warning: %s\n", warn)
	}

	if *sim {
		grid, err := tiling.NewGrid(*nodes, *tile)
		if err != nil {
			return err
		}
		if grid.PairCount() > 200000 || *global > 2000 {
			return fmt.Errorf("-sim limited to moderate schedules (%d pairs, %d iterations requested)", grid.PairCount(), *global)
		}
		plan, err := sched.Generate(grid, d.Hardware, sched.Options{
			GlobalIters: *global, TileFraction: *frac, Seed: 1,
		})
		if err != nil {
			return err
		}
		simRep, err := arch.SimulatePlan(d, plan, arch.Workload{
			Name: rep.Workload.Name, Nodes: *nodes, Batch: *batch,
			LocalIters: *local, GlobalIters: *global, TileFraction: *frac,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\ndiscrete simulation: total %.4g s, per job %.4g s over %d rounds (analytic %.4g s/job)\n",
			simRep.TotalTimeS, simRep.TimePerJobS, simRep.Rounds, rep.TimePerJobS)
		if *trace {
			if err := arch.RenderTimeline(stdout, simRep, 50); err != nil {
				return err
			}
		}
	}
	return nil
}
