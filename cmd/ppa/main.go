// Command ppa evaluates the SOPHIE power/performance/area model for a
// workload on a hardware design and prints the full report with time,
// energy, and area breakdowns — the model behind Fig. 9 and Tables
// II/III.
//
// Usage:
//
//	ppa -nodes 16384 -accel 1 -batch 100 -global 50 -tiles 0.74
//	ppa -nodes 32768 -tile 128 -batch 1000
//	ppa -nodes 2000 -pes 16 -global 5 -sim -trace   # discrete schedule walk
//	ppa -nodes 2000 -global 20 -trace               # trace-driven replay of a functional run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sophie/internal/arch"
	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/sched"
	"sophie/internal/tiling"
	"sophie/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppa:", err)
		os.Exit(1)
	}
}

// errWriter funnels all report output through one write-error check: a
// closed or full stdout (ppa | head, a broken pipe) surfaces as a
// command error instead of being silently dropped by unchecked Fprintf
// returns.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

// traceReplayNodeLimit bounds the -trace functional replay: it runs the
// real solver (with SkipTransform), so very large instances belong to
// the analytic model or -sim instead.
const traceReplayNodeLimit = 4096

func run(args []string, stdoutRaw io.Writer) error {
	fs := flag.NewFlagSet("ppa", flag.ContinueOnError)
	var (
		nodes     = fs.Int("nodes", 16384, "Ising problem order")
		accel     = fs.Int("accel", 1, "number of accelerators")
		chiplets  = fs.Int("chiplets", 4, "OPCM chiplets per accelerator")
		pes       = fs.Int("pes", 64, "PEs per chiplet")
		tile      = fs.Int("tile", 64, "tile size")
		batch     = fs.Int("batch", 100, "jobs per batch")
		local     = fs.Int("local", 10, "local iterations per global")
		global    = fs.Int("global", 50, "global iterations")
		frac      = fs.Float64("tiles", 0.74, "tile selection fraction")
		sim       = fs.Bool("sim", false, "also walk the concrete schedule (discrete simulation)")
		showTrace = fs.Bool("trace", false, "with -sim: print the round timeline; alone: replay a recorded functional run through the timing model")
		temper    = fs.Int("temper", 0, "with -trace: replay a tempering ladder of that many rungs instead of one run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stdout := &errWriter{w: stdoutRaw}

	d := arch.Design{
		Hardware: sched.Hardware{
			Accelerators:     *accel,
			ChipletsPerAccel: *chiplets,
			PEsPerChiplet:    *pes,
			TileSize:         *tile,
		},
		Params: arch.DefaultParams(),
	}
	rep, err := arch.Evaluate(d, arch.Workload{
		Name:         fmt.Sprintf("n=%d", *nodes),
		Nodes:        *nodes,
		Batch:        *batch,
		LocalIters:   *local,
		GlobalIters:  *global,
		TileFraction: *frac,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "workload: %s, batch %d, %dx%d local/global iters, %.0f%% tiles\n",
		rep.Workload.Name, rep.Workload.Batch, rep.Workload.LocalIters, rep.Workload.GlobalIters,
		100*rep.Workload.TileFraction)
	fmt.Fprintf(stdout, "hardware: %d accel x %d chiplets x %d PEs, tile %d (%d total PEs, capacity %d couplings)\n",
		*accel, *chiplets, *pes, *tile, d.Hardware.TotalPEs(), d.Hardware.Capacity())
	fmt.Fprintf(stdout, "schedule: %d pairs, %d selected/iter, %d rounds/iter, resident=%v, %.0f programs\n",
		rep.Schedule.Pairs, rep.Schedule.SelectedPairs, rep.Schedule.RoundsPerIter,
		rep.Schedule.Resident, rep.Schedule.ProgramsTotal)
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "time:   total %.4g s, per job %.4g s (bound by %s)\n",
		rep.TimeTotalS, rep.TimePerJobS, rep.Time.BoundBy)
	fmt.Fprintf(stdout, "        fill %.3g s | compute %.3g s | sync %.3g s | program %.3g s | cross-accel %.3g s\n",
		rep.Time.FillS, rep.Time.ComputeS, rep.Time.SyncS, rep.Time.ProgramS, rep.Time.CrossAccelS)
	fmt.Fprintf(stdout, "energy: total %.4g J, per job %.4g J, avg power %.4g W\n",
		rep.EnergyTotalJ, rep.EnergyPerJobJ, rep.AvgPowerW)
	e := rep.Energy
	fmt.Fprintf(stdout, "        laser %.3g | EO %.3g | ADC %.3g | SRAM %.3g | DRAM %.3g | bus %.3g | program %.3g | ctrl %.3g | glue %.3g (J)\n",
		e.LaserJ, e.EOJ, e.ADCJ, e.SRAMJ, e.DRAMJ, e.BusJ, e.ProgramJ, e.ControlJ, e.GlueJ)
	a := rep.Area
	fmt.Fprintf(stdout, "area:   total %.4g mm² (%d accelerator(s))\n", rep.AreaMM2, *accel)
	fmt.Fprintf(stdout, "        OPCM %.3g | SRAM %.3g | DRAM %.3g | laser %.3g | controller %.3g (mm² per accel)\n",
		a.OPCMChipletsMM2, a.SRAMMM2, a.DRAMMM2, a.LaserMM2, a.ControllerMM2)
	fmt.Fprintf(stdout, "EDAP:   %.4g J·s·mm² per job\n", rep.EDAP)

	feas, err := arch.CheckFeasibility(rep)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "physical: laser %.3g W/chiplet | density %.3g W/mm² | program surge %.3g W\n",
		feas.LaserPowerPerChipletW, feas.AvgPowerDensityWPerMM2, feas.ProgramSurgeW)
	for _, warn := range feas.Warnings {
		fmt.Fprintf(stdout, "warning: %s\n", warn)
	}

	if *sim {
		grid, err := tiling.NewGrid(*nodes, *tile)
		if err != nil {
			return err
		}
		if grid.PairCount() > 200000 || *global > 2000 {
			return fmt.Errorf("-sim limited to moderate schedules (%d pairs, %d iterations requested)", grid.PairCount(), *global)
		}
		plan, err := sched.Generate(grid, d.Hardware, sched.Options{
			GlobalIters: *global, TileFraction: *frac, Seed: 1,
		})
		if err != nil {
			return err
		}
		simRep, err := arch.SimulatePlan(d, plan, arch.Workload{
			Name: rep.Workload.Name, Nodes: *nodes, Batch: *batch,
			LocalIters: *local, GlobalIters: *global, TileFraction: *frac,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\ndiscrete simulation: total %.4g s, per job %.4g s over %d rounds (analytic %.4g s/job)\n",
			simRep.TotalTimeS, simRep.TimePerJobS, simRep.Rounds, rep.TimePerJobS)
		if *showTrace {
			if err := arch.RenderTimeline(stdout, simRep, 50); err != nil {
				return err
			}
		}
	} else if *showTrace {
		if *temper == 1 || *temper < 0 {
			return fmt.Errorf("-temper needs >= 2 rungs, got %d", *temper)
		}
		simRep, best, exch, err := traceReplay(d, *nodes, *tile, *local, *global, *frac, *temper)
		if err != nil {
			return err
		}
		if *temper > 0 {
			fmt.Fprintf(stdout, "\ntrace replay: total %.4g s over %d rounds for a %d-rung tempering ladder (%.4g s/rung), best energy %.6g\n",
				simRep.TotalTimeS, simRep.Rounds, *temper, simRep.TimePerJobS, best)
			fmt.Fprintf(stdout, "exchanges: %d attempted, %d accepted\n", exch.attempted, exch.accepted)
		} else {
			fmt.Fprintf(stdout, "\ntrace replay: total %.4g s over %d rounds for one job (analytic %.4g s/job), best energy %.6g\n",
				simRep.TotalTimeS, simRep.Rounds, rep.TimePerJobS, best)
		}
		if err := arch.RenderTimeline(stdout, simRep, 50); err != nil {
			return err
		}
	} else if *temper != 0 {
		return fmt.Errorf("-temper requires -trace (it replays a recorded tempering run)")
	}
	return stdout.err
}

// exchangeTally counts the exchange events of a tempering replay.
type exchangeTally struct{ attempted, accepted int }

// traceReplay runs one functional solve of a random MaxCut instance with
// an execution-trace recorder attached and replays the captured stream
// through the timing model (arch.SimulateTrace) — timing the pair visits
// the solver actually made rather than a static plan. With rungs >= 2 it
// runs the tempering portfolio instead: every rung's visits land in the
// same stream (lockstep, so SimulateTrace prices the ladder exactly) and
// the exchange events are tallied for the report.
func traceReplay(d arch.Design, nodes, tile, local, global int, frac float64, rungs int) (*arch.SimReport, float64, exchangeTally, error) {
	var tally exchangeTally
	if nodes > traceReplayNodeLimit {
		return nil, 0, tally, fmt.Errorf("-trace replays a functional run; limited to %d nodes (got %d) — combine with -sim for the static walk", traceReplayNodeLimit, nodes)
	}
	grid, err := tiling.NewGrid(nodes, tile)
	if err != nil {
		return nil, 0, tally, err
	}
	sel := int(float64(grid.PairCount())*frac + 0.5)
	if sel < 1 {
		sel = 1
	}
	runs := 1
	if rungs >= 2 {
		runs = rungs
	}
	// Ring sized to the whole run: init MVMs plus, per iteration, the
	// batch and sync events of every selected pair, the per-block
	// reconciliations, and the handful of phase markers — all scaled by
	// the run count, plus one exchange event per attempted swap.
	capacity := runs*(grid.PairCount()+global*(2*sel+grid.Tiles+8)+8) + global*runs

	g, err := graph.Random(nodes, 5*nodes, graph.WeightUnit, 1)
	if err != nil {
		return nil, 0, tally, err
	}
	cfg := core.DefaultConfig()
	cfg.TileSize = tile
	cfg.LocalIters = local
	cfg.GlobalIters = global
	cfg.TileFraction = frac
	cfg.SkipTransform = true
	cfg.Seed = 1
	rec := trace.NewRecorder(trace.Options{Capacity: capacity})
	cfg.Tracer = rec

	var best float64
	if rungs >= 2 {
		solver, err := core.NewSolver(ising.FromMaxCut(g), cfg)
		if err != nil {
			return nil, 0, tally, err
		}
		seeds, err := core.SeedRange(1, rungs)
		if err != nil {
			return nil, 0, tally, err
		}
		batch, err := solver.RunTempering(seeds, core.TemperingOptions{TMin: 0.05, TMax: 0.5, ExchangeEvery: 5})
		if err != nil {
			return nil, 0, tally, err
		}
		best = batch.BestEnergy
		tally.attempted = batch.Tempering.Attempted
		tally.accepted = batch.Tempering.Accepted
	} else {
		res, err := core.Solve(ising.FromMaxCut(g), cfg)
		if err != nil {
			return nil, 0, tally, err
		}
		best = res.BestEnergy
	}
	simRep, err := arch.SimulateTrace(d, rec.Snapshot())
	if err != nil {
		return nil, 0, tally, err
	}
	return simRep, best, tally, nil
}
