package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "16384"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"workload:", "schedule:", "time:", "energy:", "area:", "EDAP:", "physical:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestRunSimTrace(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-nodes", "2000", "-pes", "16", "-global", "3", "-sim", "-trace"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "discrete simulation") || !strings.Contains(s, "round timeline") {
		t.Fatalf("sim output missing:\n%s", s)
	}
}

func TestRunSimTooLarge(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "32768", "-sim", "-global", "5000"}, &out); err == nil {
		t.Fatal("oversized simulation must be rejected")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "0"}, &out); err == nil {
		t.Fatal("invalid workload must fail")
	}
	if err := run([]string{"-tiles", "0"}, &out); err == nil {
		t.Fatal("invalid fraction must fail")
	}
}

func TestRunTraceReplay(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-nodes", "700", "-global", "4", "-trace"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "trace replay") || !strings.Contains(s, "round timeline") {
		t.Fatalf("trace replay output missing:\n%s", s)
	}
}

func TestRunTraceReplayTooLarge(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "16384", "-trace"}, &out); err == nil {
		t.Fatal("oversized functional replay must be rejected")
	}
}

// failAfter errors every write past the first n bytes — a stand-in for
// a closed pipe under ppa | head.
type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errClosed
	}
	f.n -= len(p)
	return len(p), nil
}

var errClosed = errors.New("write on closed pipe")

func TestRunReportsWriteErrors(t *testing.T) {
	if err := run([]string{"-nodes", "2048"}, &failAfter{n: 64}); !errors.Is(err, errClosed) {
		t.Fatalf("err = %v, want the underlying write error", err)
	}
}
