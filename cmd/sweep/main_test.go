package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSweep(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-preset", "K100", "-tile", "32", "-global", "15",
		"-phi", "0.1,0.2", "-alpha", "0", "-local", "5", "-tiles", "0.5,1.0", "-runs", "2"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Header + 2 phi × 1 alpha × 1 local × 2 fractions = 5 lines.
	if len(lines) != 5 {
		t.Fatalf("got %d CSV lines, want 5:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "alpha,phi,local_iters") {
		t.Fatalf("CSV header wrong: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 9 {
			t.Fatalf("CSV row has wrong arity: %q", l)
		}
		if !strings.HasSuffix(l, ",0") {
			t.Fatalf("unbounded sweep should report 0 stopped replicas: %q", l)
		}
	}
}

// TestRunSweepTimeout gives a huge sweep a tiny budget: the partial
// point's row must still appear (with stopped replicas) and run must
// abort with a timeout error instead of silently truncating the CSV.
func TestRunSweepTimeout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-preset", "K100", "-tile", "32", "-global", "5000000",
		"-phi", "0.1", "-alpha", "0", "-local", "1", "-runs", "2",
		"-timeout", "100ms"},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("expired sweep returned %v, want timeout error", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d CSV lines, want header + 1 partial row:\n%s", len(lines), out.String())
	}
	if strings.HasSuffix(lines[1], ",0") {
		t.Fatalf("partial row should count stopped replicas: %q", lines[1])
	}
}

func TestRunSweepErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-preset", "nope"},
		{"-preset", "K100", "-phi", "x"},
		{"-preset", "K100", "-alpha", ""},
		{"-preset", "K100", "-local", "1.5"},
		{"-preset", "K100", "-tiles", "abc"},
	}
	for _, args := range cases {
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
