// Command sweep runs a custom parameter sweep of the SOPHIE functional
// simulator over noise φ, dropout α, local iterations, and tile
// fraction, printing one CSV row per point — the generic driver behind
// the Fig. 6-8 style studies for arbitrary instances.
//
// Usage:
//
//	sweep -preset K100 -phi 0.05,0.1,0.2 -alpha 0,0.1 -runs 5
//	sweep -graph my.txt -local 1,5,10 -tiles 0.5,1.0 -global 200
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		graphFile    = fs.String("graph", "", "GSET-format graph file ('-' or empty reads stdin)")
		preset       = fs.String("preset", "", "named instance: G1 | G22 | K100")
		tile         = fs.Int("tile", 64, "tile size")
		global       = fs.Int("global", 200, "global iterations")
		phiList      = fs.String("phi", "0.1", "comma-separated noise values")
		alphaList    = fs.String("alpha", "0", "comma-separated dropout values")
		localList    = fs.String("local", "10", "comma-separated local-iteration counts")
		fracList     = fs.String("tiles", "1.0", "comma-separated tile fractions")
		runs         = fs.Int("runs", 3, "replicas per point (run concurrently)")
		seed         = fs.Int64("seed", 1, "base seed")
		workers      = fs.Int("workers", 0, "per-replica solver workers passed to the batch runtime")
		batchWorkers = fs.Int("batch-workers", 0, "concurrent replicas per sweep point (0 = GOMAXPROCS)")
		tempering    = fs.Bool("tempering", false, "couple each point's replicas into a parallel-tempering ladder (the -tmin/-tmax ladder replaces the -phi value per rung; appends an exchange_rate CSV column)")
		tmin         = fs.Float64("tmin", 0.05, "coldest tempering noise level (with -tempering)")
		tmax         = fs.Float64("tmax", 0.5, "hottest tempering noise level (with -tempering)")
		exchEvery    = fs.Int("exchange-every", 1, "tempering exchange period in global iterations (with -tempering)")
		timeout      = fs.Duration("timeout", 0, "wall-clock budget for the whole sweep (0 = unbounded); on expiry the current point's partial row is printed and the sweep aborts with an error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := loadGraph(*graphFile, *preset, stdin)
	if err != nil {
		return err
	}
	model := ising.FromMaxCut(g)

	phis, err := parseFloats(*phiList)
	if err != nil {
		return err
	}
	alphas, err := parseFloats(*alphaList)
	if err != nil {
		return err
	}
	locals, err := parseInts(*localList)
	if err != nil {
		return err
	}
	fracs, err := parseFloats(*fracList)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *tempering && *runs < 2 {
		return fmt.Errorf("-tempering requires -runs >= 2 (one replica per ladder rung)")
	}

	header := "alpha,phi,local_iters,tile_fraction,mean_cut,std_cut,min_cut,max_cut,runs,stopped"
	if *tempering {
		header += ",exchange_rate"
	}
	fmt.Fprintln(stdout, header)
	for _, alpha := range alphas {
		cfg := core.DefaultConfig()
		cfg.TileSize = *tile
		cfg.GlobalIters = *global
		cfg.Alpha = alpha
		cfg.Workers = *workers
		cfg.EvalEvery = 2
		solver, err := core.NewSolver(model, cfg)
		if err != nil {
			return err
		}
		for _, phi := range phis {
			for _, local := range locals {
				for _, frac := range fracs {
					tuned, err := solver.WithRuntime(func(c *core.Config) {
						c.Phi = phi
						c.LocalIters = local
						c.TileFraction = frac
					})
					if err != nil {
						return err
					}
					// The batched replica runtime runs the point's
					// replicas concurrently; per-replica results are
					// identical to sequential Run calls, so the CSV
					// is unchanged — only the wall clock shrinks. With
					// -tempering the replicas couple into a ladder
					// instead (the rung phis replace the point's phi).
					seeds, err := core.SeedRange(*seed, *runs)
					if err != nil {
						return err
					}
					batchOpts := core.BatchOptions{
						Workers:    *batchWorkers,
						JobWorkers: *workers,
					}
					if *tempering {
						batchOpts.Tempering = &core.TemperingOptions{TMin: *tmin, TMax: *tmax, ExchangeEvery: *exchEvery}
					}
					batch, err := tuned.RunBatchCtx(ctx, seeds, batchOpts)
					if err != nil {
						return err
					}
					cuts := make([]float64, 0, *runs)
					for _, res := range batch.Results {
						cuts = append(cuts, g.CutValue(res.BestSpins))
					}
					s := metrics.Summarize(cuts)
					row := fmt.Sprintf("%g,%g,%d,%g,%.2f,%.2f,%.0f,%.0f,%d,%d",
						alpha, phi, local, frac, s.Mean, s.Std, s.Min, s.Max, s.N, batch.Stopped)
					if ts := batch.Tempering; ts != nil {
						row += fmt.Sprintf(",%.3f", ts.ExchangeRate)
					}
					fmt.Fprintln(stdout, row)
					if ctx.Err() != nil {
						// A stopped row mixes full and truncated replicas;
						// the abort keeps a silently short sweep out of
						// downstream plots.
						return fmt.Errorf("timeout %v expired; sweep aborted after a partial point", *timeout)
					}
				}
			}
		}
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad int %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func loadGraph(file, preset string, stdin io.Reader) (*graph.Graph, error) {
	if preset != "" {
		switch preset {
		case "G1":
			return graph.G1Standin(), nil
		case "G22":
			return graph.G22Standin(), nil
		case "K100":
			return graph.KGraph(100), nil
		default:
			return nil, fmt.Errorf("unknown preset %q", preset)
		}
	}
	if file == "" || file == "-" {
		return graph.Read(stdin)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	// Read path: a close error cannot corrupt anything already parsed.
	defer func() { _ = f.Close() }()
	return graph.Read(f)
}
