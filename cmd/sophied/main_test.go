package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sophie/internal/graph"
	"sophie/internal/service"
)

// startDaemon runs the daemon on a random port and returns its base URL
// plus a cancel that triggers graceful shutdown and an errCh carrying
// run's return.
func startDaemon(t *testing.T, extraArgs ...string) (string, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	var out bytes.Buffer
	go func() { errCh <- run(ctx, args, &out, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, errCh
	case err := <-errCh:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
		return "", nil, nil
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
		return "", nil, nil
	}
}

func kGraphText(t *testing.T, n int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.Write(&buf, graph.KGraph(n)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func submit(t *testing.T, base string, spec map[string]any) service.JobView {
	t.Helper()
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := json.Marshal(resp.Header)
		t.Fatalf("submit status %d (%s)", resp.StatusCode, body)
	}
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func pollDone(t *testing.T, base, id string) service.JobView {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v service.JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return service.JobView{}
}

// TestDaemonLifecycle boots the daemon, runs one job end to end over
// HTTP, and shuts down cleanly.
func TestDaemonLifecycle(t *testing.T) {
	base, cancel, errCh := startDaemon(t, "-workers", "2")
	v := submit(t, base, map[string]any{
		"graph":    kGraphText(t, 12),
		"replicas": 2,
		"seed":     3,
		"config":   map[string]any{"tile_size": 6, "local_iters": 2, "global_iters": 10},
	})
	v = pollDone(t, base, v.ID)
	if v.State != service.StateDone || v.Result == nil {
		t.Fatalf("job state %s (err %q), want done with result", v.State, v.Error)
	}
	if len(v.Result.BestSpins) != 12 {
		t.Errorf("spins length %d, want 12", len(v.Result.BestSpins))
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v (status %v)", err, resp)
	}
	_ = resp.Body.Close()

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("clean shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after cancel")
	}
}

// TestDaemonDrainSnapshot forces a drain with one in-flight job too
// slow for the drain window and one still-queued job: the queued job
// must land in the snapshot file and run must report the forced drain.
func TestDaemonDrainSnapshot(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "queue.json")
	base, cancel, errCh := startDaemon(t,
		"-workers", "1", "-drain-timeout", "300ms", "-snapshot", snapPath)

	slow := map[string]any{
		"graph": kGraphText(t, 12),
		"config": map[string]any{
			"tile_size": 6, "local_iters": 1, "global_iters": 50000000,
		},
	}
	first := submit(t, base, slow)
	// Wait until the worker has it before queueing the second.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + first.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v service.JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if v.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued := submit(t, base, slow)

	cancel()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "drain incomplete") {
			t.Fatalf("forced drain returned %v, want drain-incomplete error", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after cancel")
	}

	buf, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("reading snapshot: %v", err)
	}
	var snap service.QueueSnapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if len(snap.Jobs) != 1 || snap.Jobs[0].ID != queued.ID {
		t.Fatalf("snapshot %+v, want exactly the queued job %s", snap.Jobs, queued.ID)
	}
	if snap.Jobs[0].Spec.Graph == "" {
		t.Error("snapshot spec lost the inline graph")
	}
}

// TestDaemonWALRecovery restarts the daemon over the same WAL
// directory: a job interrupted mid-run and a job still queued at
// shutdown must both come back and run to completion in the second
// process lifetime — zero job loss across the restart.
func TestDaemonWALRecovery(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	base, cancel, errCh := startDaemon(t,
		"-workers", "1", "-drain-timeout", "100ms", "-wal", walDir)

	slow := map[string]any{
		"graph": kGraphText(t, 12),
		"config": map[string]any{
			"tile_size": 6, "local_iters": 1, "global_iters": 50000000,
		},
	}
	fast := map[string]any{
		"graph":    kGraphText(t, 12),
		"replicas": 2,
		"seed":     9,
		"config":   map[string]any{"tile_size": 6, "local_iters": 2, "global_iters": 10},
	}
	running := submit(t, base, slow)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + running.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v service.JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if v.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued := submit(t, base, fast)

	// Stop the daemon mid-queue. The running job is force-cancelled at
	// an iteration boundary (drain window far below its runtime) and is
	// journaled terminal; the queued job drains unterminated, which is
	// exactly what makes it replay.
	cancel()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "drain incomplete") {
			t.Fatalf("forced drain returned %v, want drain-incomplete error", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after cancel")
	}

	// Second lifetime over the same WAL: the queued job replays and
	// completes; the cancelled in-flight job does not resurrect.
	base2, cancel2, errCh2 := startDaemon(t, "-workers", "1", "-wal", walDir)
	v := pollDone(t, base2, queued.ID)
	if v.State != service.StateDone || v.Result == nil {
		t.Fatalf("recovered job state %s (err %q), want done with result", v.State, v.Error)
	}
	if len(v.Result.BestSpins) != 12 {
		t.Errorf("recovered result spins length %d, want 12", len(v.Result.BestSpins))
	}
	resp, err := http.Get(base2 + "/v1/jobs/" + running.ID)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("force-cancelled job %s answered %d after restart; its terminal record should keep it out of replay", running.ID, resp.StatusCode)
	}

	cancel2()
	select {
	case err := <-errCh2:
		if err != nil {
			t.Fatalf("second shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("second daemon did not exit")
	}
}

// TestDaemonFlagErrors checks bad flags fail fast.
func TestDaemonFlagErrors(t *testing.T) {
	var out bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, []string{"-no-such-flag"}, &out, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(ctx, []string{"-addr", "999.999.999.999:0"}, &out, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
