// Command sophied is the SOPHIE solver daemon: a job-queue service
// that accepts max-cut jobs over an HTTP JSON API, executes them on a
// bounded worker pool through the context-aware batch runtime, and
// reports results, lifecycle state, and service metrics.
//
// Usage:
//
//	sophied -addr 127.0.0.1:8080 -workers 4 -queue 128
//	curl -X POST localhost:8080/v1/jobs -d '{"preset":"K100","replicas":4,"seed":7}'
//	curl localhost:8080/v1/jobs/j00000001
//
// On SIGINT/SIGTERM the daemon stops admission (503 + draining
// /healthz), drains in-flight jobs to completion (bounded by
// -drain-timeout, after which they are force-cancelled at their next
// global-iteration boundary), and writes the still-queued jobs to
// -snapshot for resubmission after a restart.
//
// With -wal DIR the queue is durable: every accepted job is fsync'd to
// a write-ahead log before its 202, and a restart over the same
// directory replays queued and interrupted jobs back into the queue —
// a kill -9 loses nothing. -tenant-rate/-tenant-burst/-tenant-share
// turn on per-tenant fair admission keyed by the X-Tenant header, and
// GET /v1/jobs/{id}/events streams live progress as server-sent
// events:
//
//	sophied -addr 127.0.0.1:8080 -wal /var/lib/sophied/wal
//	curl -N localhost:8080/v1/jobs/j00000001/events
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sophie/internal/service"
	"sophie/internal/wal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sophied:", err)
		os.Exit(1)
	}
}

// run is the daemon body; ctx cancellation triggers graceful shutdown.
// When ready is non-nil the bound listen address is sent on it once the
// server is accepting — the hook the tests use to find a :0 port.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("sophied", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
		queueCap       = fs.Int("queue", 64, "admission queue capacity (full queue rejects with 429)")
		workers        = fs.Int("workers", 1, "concurrent job executors")
		resultTTL      = fs.Duration("result-ttl", 15*time.Minute, "how long finished jobs stay queryable")
		defaultTimeout = fs.Duration("default-timeout", 0, "timeout for jobs that set none (0 = unbounded)")
		maxReplicas    = fs.Int("max-replicas", 64, "per-job replica cap")
		problemDir     = fs.String("problem-dir", "", "root directory for graph_file submissions (empty disables them)")
		cacheSize      = fs.Int("cache", 8, "preprocessed solvers kept in the LRU cache")
		snapshotPath   = fs.String("snapshot", "", "write the drained queue snapshot JSON here on shutdown")
		drainTimeout   = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before force-cancelling")
		walDir         = fs.String("wal", "", "job write-ahead log directory; enables crash recovery (empty = memory-only queue)")
		tenantRate     = fs.Float64("tenant-rate", 0, "per-tenant sustained submissions/second (0 disables rate limiting)")
		tenantBurst    = fs.Int("tenant-burst", 0, "per-tenant submission burst (0 derives from -tenant-rate)")
		tenantShare    = fs.Float64("tenant-share", 0, "max fraction of the queue one tenant may occupy (0 disables the share cap)")
		sseHeartbeat   = fs.Duration("sse-heartbeat", 15*time.Second, "keepalive period on /v1/jobs/{id}/events streams")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := service.Config{
		QueueCap:        *queueCap,
		Workers:         *workers,
		DefaultTimeout:  *defaultTimeout,
		ResultTTL:       *resultTTL,
		MaxReplicas:     *maxReplicas,
		SolverCacheSize: *cacheSize,
		ProblemDir:      *problemDir,
		Tenant: service.TenantConfig{
			Rate:          *tenantRate,
			Burst:         *tenantBurst,
			MaxQueueShare: *tenantShare,
		},
	}

	// Durable queue: replay the WAL before the workers start, so every
	// recovered job re-enters the queue ahead of any new submission.
	var jlog *wal.Log
	var pending []service.SnapshotJob
	if *walDir != "" {
		var err error
		jlog, pending, err = wal.Open(*walDir, wal.Options{})
		if err != nil {
			return fmt.Errorf("opening WAL: %w", err)
		}
		defer jlog.Close()
		cfg.Journal = jlog
	}

	m := service.NewManager(cfg)
	if len(pending) > 0 {
		restored, err := m.Restore(pending)
		if err != nil {
			// Unresolvable specs come back as queryable failed jobs; the
			// daemon keeps serving.
			fmt.Fprintf(stdout, "sophied: wal replay: %v\n", err)
		}
		fmt.Fprintf(stdout, "sophied: restored %d job(s) from %s\n", restored, *walDir)
	}
	m.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.NewServer(m, service.WithHeartbeat(*sseHeartbeat))}
	fmt.Fprintf(stdout, "sophied: listening on %s (%d workers, queue %d)\n", ln.Addr(), *workers, *queueCap)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain. Admission closes first so poll/cancel endpoints
	// keep answering while in-flight jobs wind down; the HTTP listener
	// goes away last.
	fmt.Fprintln(stdout, "sophied: draining")
	m.StopAdmission()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	snap, drainErr := m.Shutdown(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stdout, "sophied: http shutdown: %v\n", err)
	}
	// Join the serve goroutine: srv.Shutdown stops the listener, which
	// makes Serve return http.ErrServerClosed. Draining the channel
	// guarantees no daemon goroutine outlives run; anything else Serve
	// reports is a real serving failure that raced the shutdown.
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stdout, "sophied: serve: %v\n", err)
	}

	if *snapshotPath != "" && len(snap.Jobs) > 0 {
		if err := writeSnapshot(*snapshotPath, snap); err != nil {
			return fmt.Errorf("writing queue snapshot: %w", err)
		}
		fmt.Fprintf(stdout, "sophied: snapshotted %d queued job(s) to %s\n", len(snap.Jobs), *snapshotPath)
	}
	if drainErr != nil {
		fmt.Fprintln(stdout, "sophied: drain timeout — in-flight jobs force-cancelled at iteration boundaries")
		return fmt.Errorf("drain incomplete: %w", drainErr)
	}
	fmt.Fprintln(stdout, "sophied: drained cleanly")
	return nil
}

func writeSnapshot(path string, snap *service.QueueSnapshot) error {
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
