// Package sophie is a from-scratch reproduction of SOPHIE, the Scalable
// Optical PHase-change memory Ising Engine (Yang et al., MICRO 2024): a
// computation-based recurrent Ising machine that decomposes the PRIS
// recurrence into symmetric tile pairs mapped onto bi-directional OPCM
// crossbar arrays, and scales past the hardware capacity through
// symmetric local updates and stochastic global iterations.
//
// The package is a facade over the full implementation:
//
//   - graphs and benchmark instances (internal/graph)
//   - the Ising model and problem reductions (internal/ising)
//   - the reference PRIS algorithm (internal/pris)
//   - the SOPHIE modified algorithm (internal/core)
//   - the OPCM device model (internal/opcm)
//   - scheduling and the PPA/EDAP architecture model (internal/sched,
//     internal/arch)
//   - baseline solvers: SA, simulated bifurcation, BRIM, BLS
//     (internal/baseline)
//
// Quickstart:
//
//	g := sophie.KGraph(100)
//	res, err := sophie.Solve(sophie.MaxCut(g), sophie.DefaultConfig())
//	if err != nil { ... }
//	fmt.Println("cut:", g.CutValue(res.BestSpins))
package sophie

import (
	"fmt"
	"io"

	"sophie/internal/arch"
	"sophie/internal/baseline"
	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/linalg"
	"sophie/internal/metrics"
	"sophie/internal/opcm"
	"sophie/internal/pris"
	"sophie/internal/sched"
	"sophie/internal/tiling"
)

// ---- Graphs and benchmark instances --------------------------------

// Graph is a weighted undirected graph over nodes 0..N-1.
type Graph = graph.Graph

// Edge is an undirected weighted edge.
type Edge = graph.Edge

// WeightScheme selects how generated edge weights are drawn.
type WeightScheme = graph.WeightScheme

// Weight schemes for the graph generators.
const (
	WeightUnit    = graph.WeightUnit
	WeightPM1     = graph.WeightPM1
	WeightUniform = graph.WeightUniform
)

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// RandomGraph generates a Rudy-style sparse random graph with exactly m
// edges.
func RandomGraph(n, m int, scheme WeightScheme, seed int64) (*Graph, error) {
	return graph.Random(n, m, scheme, seed)
}

// RandomRegularGraph generates a uniform random d-regular graph via the
// configuration model — the sparse scaling workload family (every node
// has exactly degree d, so a million-spin instance stores only n·d/2
// edges). n·d must be even and d < n.
func RandomRegularGraph(n, d int, scheme WeightScheme, seed int64) (*Graph, error) {
	return graph.RandomRegular(n, d, scheme, seed)
}

// CompleteGraph generates the complete graph K_n with random weights.
func CompleteGraph(n int, scheme WeightScheme, seed int64) *Graph {
	return graph.Complete(n, scheme, seed)
}

// G1 returns the synthetic stand-in for GSET G1 (800 nodes, 19176
// unit-weight edges). See DESIGN.md for the substitution rationale.
func G1() *Graph { return graph.G1Standin() }

// G22 returns the synthetic stand-in for GSET G22 (2000 nodes, 19990
// unit-weight edges).
func G22() *Graph { return graph.G22Standin() }

// KGraph returns the complete graph on n nodes with ±1 random weights
// (the paper's K100/K16384/K32768 workload family).
func KGraph(n int) *Graph { return graph.KGraph(n) }

// ReadGraph parses a graph in GSET text format ("n m" header, then
// "u v w" lines, 1-indexed).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph serializes a graph in GSET text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// ---- Matrices ---------------------------------------------------------

// Matrix is a dense row-major float64 matrix (the coupling/QUBO carrier).
type Matrix = linalg.Matrix

// NewMatrix returns a zeroed rows × cols matrix.
func NewMatrix(rows, cols int) *Matrix { return linalg.NewMatrix(rows, cols) }

// NewMatrixFrom builds a matrix from row-major data.
func NewMatrixFrom(rows, cols int, data []float64) (*Matrix, error) {
	return linalg.NewMatrixFrom(rows, cols, data)
}

// ---- Ising models ---------------------------------------------------

// Model is an Ising model H = -½ Σ σᵢKᵢⱼσⱼ over ±1 spins.
type Model = ising.Model

// MaxCut builds the Ising model whose ground state solves max-cut on g.
func MaxCut(g *Graph) *Model { return ising.FromMaxCut(g) }

// MaxCutSparse builds the max-cut Ising model directly in CSR form,
// never materializing the dense n×n coupling matrix — the entry point
// for million-spin instances. Sparse-built models require
// Config.SkipTransform and the default engine; the solver runs them on
// the CSR datapath, bit-identical to the dense path wherever both can
// run (DESIGN.md "Sparse datapath").
func MaxCutSparse(g *Graph) *Model { return ising.FromMaxCutCSR(g) }

// NewModel wraps a symmetric coupling matrix as an Ising model.
func NewModel(k *linalg.Matrix) (*Model, error) { return ising.NewModel(k) }

// NumberPartition builds the Ising model for two-way number partitioning.
func NumberPartition(numbers []float64) *Model { return ising.NumberPartition(numbers) }

// PartitionImbalance evaluates a number-partitioning assignment.
func PartitionImbalance(numbers []float64, spins []int8) float64 {
	return ising.PartitionImbalance(numbers, spins)
}

// QUBO is a quadratic unconstrained binary optimization problem.
type QUBO = ising.QUBO

// EmbedField folds an external field into a coupling matrix via an
// ancilla spin, so field-bearing problems run on the field-free SOPHIE
// recurrence.
func EmbedField(m *Model, h []float64) (*Model, error) { return ising.EmbedField(m, h) }

// Lucas-style QUBO reductions (vertex cover, k-coloring, TSP) with
// their decoders and validators.
var (
	VertexCoverQUBO   = ising.VertexCoverQUBO
	DecodeVertexCover = ising.DecodeVertexCover
	IsVertexCover     = ising.IsVertexCover
	ColoringQUBO      = ising.ColoringQUBO
	DecodeColoring    = ising.DecodeColoring
	IsProperColoring  = ising.IsProperColoring
	TSPQUBO           = ising.TSPQUBO
	// Maximum independent set (the vertex-cover complement).
	MaxIndependentSetQUBO = ising.MaxIndependentSetQUBO
	DecodeIndependentSet  = ising.DecodeIndependentSet
	IsIndependentSet      = ising.IsIndependentSet
	DecodeTour            = ising.DecodeTour
	TourLength            = ising.TourLength
	// SolveQUBOExhaustive enumerates tiny QUBOs exactly (tests/demos).
	SolveQUBOExhaustive = ising.SolveQUBOExhaustive
)

// ---- SOPHIE solver --------------------------------------------------

// Config controls a SOPHIE solve (tile size, local/global iterations,
// stochastic tile fraction, noise φ, dropout α, spin update mode, ...).
type Config = core.Config

// Result reports a SOPHIE job (best spins/energy, iterations, op counts).
type Result = core.Result

// Solver holds preprocessed state and runs batched jobs.
type Solver = core.Solver

// SpinUpdate selects how global synchronization reconciles spin copies.
type SpinUpdate = core.SpinUpdate

// Spin reconciliation modes.
const (
	SpinUpdateMajority   = core.SpinUpdateMajority
	SpinUpdateStochastic = core.SpinUpdateStochastic
)

// BatchOptions controls the batched replica runtime (RunBatch
// scheduling: batch workers, per-job workers, portfolio early-stop).
type BatchOptions = core.BatchOptions

// BatchResult aggregates a RunBatch call (per-replica results, best /
// mean / median energy, success probability, summed op counts).
type BatchResult = core.BatchResult

// TemperingOptions selects the tempering portfolio runtime
// (Solver.RunTempering / BatchOptions.Tempering): a geometric phi
// ladder with replica exchanges at global-iteration boundaries.
type TemperingOptions = core.TemperingOptions

// TemperingStats reports a tempering run's ladder and exchange
// statistics (BatchResult.Tempering).
type TemperingStats = core.TemperingStats

// SeedRange returns n consecutive replica seeds starting at base, or an
// error when the range would overflow int64 (wrapped seeds would
// duplicate replica streams).
func SeedRange(base int64, n int) ([]int64, error) { return core.SeedRange(base, n) }

// DefaultConfig returns the paper's operating point (tile 64, 10 local
// iterations per global, 500 global iterations, stochastic spin update,
// φ=0.1, α=0).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewSolver preprocesses a model under a configuration.
func NewSolver(m *Model, cfg Config) (*Solver, error) { return core.NewSolver(m, cfg) }

// Solve builds a solver and runs a single job.
func Solve(m *Model, cfg Config) (*Result, error) { return core.Solve(m, cfg) }

// WithDeviceModel returns a copy of cfg whose tile MVMs run through the
// OPCM device model (quantized cells, optional read noise and faults)
// instead of the ideal float64 datapath.
func WithDeviceModel(cfg Config, params DeviceParams) Config {
	cfg.Engine = func(tiles []*linalg.Matrix) (tiling.Engine, error) {
		return opcm.NewEngine(tiles, 0, params)
	}
	return cfg
}

// WithDriftDeviceModel is WithDeviceModel plus the GST transmittance
// drift model: nu is the drift exponent, t0 the reference time in
// seconds. The returned engine ages only if driven through
// opcm.DriftEngine's Tick/Refresh API (type-assert Solver.Engine()).
func WithDriftDeviceModel(cfg Config, params DeviceParams, nu, t0 float64) Config {
	cfg.Engine = func(tiles []*linalg.Matrix) (tiling.Engine, error) {
		return opcm.NewDriftEngine(tiles, 0, params, nu, t0)
	}
	return cfg
}

// ---- Reference PRIS algorithm ---------------------------------------

// PRISConfig controls the reference (untiled) PRIS recurrence.
type PRISConfig = pris.Config

// PRISResult reports a PRIS run.
type PRISResult = pris.Result

// SolvePRIS runs the reference PRIS algorithm.
func SolvePRIS(m *Model, cfg PRISConfig) (*PRISResult, error) { return pris.Solve(m, cfg) }

// ---- Device and architecture models ----------------------------------

// DeviceParams configures the OPCM device model (cell bits, ADC bits,
// read noise, stuck-cell faults).
type DeviceParams = opcm.Params

// DefaultDeviceParams returns the paper's device configuration (6-bit
// cells, 8-bit sync ADC).
func DefaultDeviceParams() DeviceParams { return opcm.DefaultParams() }

// Hardware describes an accelerator pool (accelerators × chiplets × PEs
// × tile size).
type Hardware = sched.Hardware

// DefaultHardware returns one accelerator in the paper's configuration
// (4 OPCM chiplets of 64 PEs, 64×64 tiles).
func DefaultHardware() Hardware { return sched.DefaultHardware() }

// ArchParams are the technology constants of the PPA model.
type ArchParams = arch.Params

// DefaultArchParams returns the Section IV-A constants.
func DefaultArchParams() ArchParams { return arch.DefaultParams() }

// Design pairs hardware with technology parameters.
type Design = arch.Design

// Workload describes a batched execution for the PPA model.
type Workload = arch.Workload

// PPAReport is the output of the PPA model: time, energy, area, EDAP.
type PPAReport = arch.Report

// EstimatePPA evaluates the analytic power/performance/area model for a
// workload on a design.
func EstimatePPA(d Design, w Workload) (*PPAReport, error) { return arch.Evaluate(d, w) }

// SolveAndEstimate couples the functional simulator with the
// architecture model the way the paper's evaluation does: it runs one
// SOPHIE job, then prices the executed iterations on the design with
// the given batch size (the hardware amortizes programming over the
// batch). The returned report reflects the measured GlobalItersRun —
// pass a TargetEnergy in cfg to get time-to-solution numbers.
func SolveAndEstimate(m *Model, cfg Config, d Design, batch int) (*Result, *PPAReport, error) {
	if d.Hardware.TileSize != cfg.TileSize {
		return nil, nil, fmt.Errorf("sophie: design tile size %d != solver tile size %d",
			d.Hardware.TileSize, cfg.TileSize)
	}
	res, err := core.Solve(m, cfg)
	if err != nil {
		return nil, nil, err
	}
	iters := res.GlobalItersRun
	if iters < 1 {
		iters = 1
	}
	rep, err := arch.Evaluate(d, arch.Workload{
		Name:         "solve",
		Nodes:        m.N(),
		Batch:        batch,
		LocalIters:   cfg.LocalIters,
		GlobalIters:  iters,
		TileFraction: cfg.TileFraction,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, rep, nil
}

// DefaultDesign returns one accelerator with default parameters.
func DefaultDesign() Design { return arch.DefaultDesign() }

// ---- Baseline solvers -------------------------------------------------

// Baseline solver configurations and entry points (Section IV-D
// comparators).
type (
	SAConfig   = baseline.SAConfig
	SBConfig   = baseline.SBConfig
	BRIMConfig = baseline.BRIMConfig
	BLSConfig  = baseline.BLSConfig
	PTConfig   = baseline.PTConfig
)

// SimulatedAnnealing runs Metropolis annealing on the model.
func SimulatedAnnealing(m *Model, cfg SAConfig) (*baseline.Result, error) {
	return baseline.SimulatedAnnealing(m, cfg)
}

// SimulatedBifurcation runs ballistic simulated bifurcation.
func SimulatedBifurcation(m *Model, cfg SBConfig) (*baseline.Result, error) {
	return baseline.SimulatedBifurcation(m, cfg)
}

// BRIM runs the bistable resistively-coupled Ising machine ODE.
func BRIM(m *Model, cfg BRIMConfig) (*baseline.Result, error) {
	return baseline.BRIM(m, cfg)
}

// BLS runs breakout-style local search for max-cut.
func BLS(g *Graph, cfg BLSConfig) (*baseline.BLSResult, error) {
	return baseline.BLS(g, cfg)
}

// ParallelTempering runs replica-exchange Metropolis.
func ParallelTempering(m *Model, cfg PTConfig) (*baseline.PTResult, error) {
	return baseline.ParallelTempering(m, cfg)
}

// DefaultSAConfig returns the simulated annealing defaults.
func DefaultSAConfig() SAConfig { return baseline.DefaultSAConfig() }

// DefaultSBConfig returns the simulated bifurcation defaults.
func DefaultSBConfig() SBConfig { return baseline.DefaultSBConfig() }

// DefaultBRIMConfig returns the BRIM ODE defaults.
func DefaultBRIMConfig() BRIMConfig { return baseline.DefaultBRIMConfig() }

// DefaultBLSConfig returns the breakout local search defaults.
func DefaultBLSConfig() BLSConfig { return baseline.DefaultBLSConfig() }

// DefaultPTConfig returns the parallel tempering defaults.
func DefaultPTConfig() PTConfig { return baseline.DefaultPTConfig() }

// TimeToSolution computes the standard TTS metric (T90 at confidence
// 0.9): expected wall time to reach the target at least once given a
// per-run success probability.
func TimeToSolution(runTime, successProb, confidence float64) (float64, error) {
	return metrics.TimeToSolution(runTime, successProb, confidence)
}
