#!/usr/bin/env bash
# Smoke-test the sophied daemon end to end against the real binaries:
# start it, submit a K100 job over HTTP, poll to completion, check the
# best cut matches a direct cmd/sophie run with the same seeds and
# config (the Go test suite proves bit-identity; this proves the shipped
# binary and HTTP plumbing agree with it), watch the job's SSE stream,
# then drain with SIGTERM. A second leg kill -9s a WAL-backed daemon
# mid-queue and restarts it over the same directory, asserting zero job
# loss.
set -euo pipefail

cd "$(dirname "$0")/.."
mkdir -p bin
go build -o bin/ ./cmd/sophie ./cmd/sophied

ADDR=127.0.0.1:18462
./bin/sophied -addr "$ADDR" -workers 2 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null || { echo "daemon never became healthy"; exit 1; }

SPEC='{"preset":"K100","replicas":2,"seed":7,"config":{"tile_size":32,"global_iters":30,"phi":0.2}}'
ID=$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$SPEC" | grep -o '"id":"[^"]*"' | cut -d'"' -f4)
[ -n "$ID" ] || { echo "submission returned no job id"; exit 1; }
echo "submitted job $ID"

BODY=""
STATE=""
for _ in $(seq 1 200); do
  BODY=$(curl -sf "http://$ADDR/v1/jobs/$ID")
  STATE=$(echo "$BODY" | grep -o '"state":"[^"]*"' | head -1 | cut -d'"' -f4)
  [ "$STATE" = done ] && break
  if [ "$STATE" = failed ] || [ "$STATE" = cancelled ]; then
    echo "job ended $STATE: $BODY"
    exit 1
  fi
  sleep 0.1
done
[ "$STATE" = done ] || { echo "job never finished (last state: $STATE)"; exit 1; }

SERVICE_CUT=$(echo "$BODY" | grep -o '"best_cut":[0-9.eE+-]*' | head -1 | cut -d: -f2)
DIRECT_CUT=$(./bin/sophie -preset K100 -tile 32 -global 30 -phi 0.2 -replicas 2 -seed 7 \
  | sed -n 's/^batch: best cut \([0-9.]*\).*/\1/p')
echo "service best cut: $SERVICE_CUT, direct best cut: $DIRECT_CUT"
[ -n "$SERVICE_CUT" ] && [ -n "$DIRECT_CUT" ] || { echo "could not extract cuts"; exit 1; }
awk -v a="$SERVICE_CUT" -v b="$DIRECT_CUT" 'BEGIN { exit (a == b) ? 0 : 1 }' \
  || { echo "FAIL: service and direct cuts differ"; exit 1; }

curl -sf "http://$ADDR/metrics" | grep -q '"completed":1' \
  || { echo "metrics do not report the completed job"; exit 1; }

# The SSE stream of a terminal job delivers its state and result
# immediately and then ends — curl returns without hitting --max-time.
SSE=$(curl -sfN --max-time 10 "http://$ADDR/v1/jobs/$ID/events")
echo "$SSE" | grep -q '^event: state$'  || { echo "SSE stream missing state event"; exit 1; }
echo "$SSE" | grep -q '^event: result$' || { echo "SSE stream missing result event"; exit 1; }
echo "SSE stream OK"

kill -TERM "$DAEMON"
if ! wait "$DAEMON"; then
  echo "daemon exited non-zero on SIGTERM"
  exit 1
fi
trap - EXIT

# ---- kill -9 / restart leg: the WAL must lose nothing ----------------
WALDIR=$(mktemp -d)
trap 'rm -rf "$WALDIR"' EXIT
./bin/sophied -addr "$ADDR" -workers 1 -wal "$WALDIR" &
DAEMON=$!
trap 'kill -9 "$DAEMON" 2>/dev/null || true; rm -rf "$WALDIR"' EXIT

for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null || { echo "WAL daemon never became healthy"; exit 1; }

# One job slow enough to still be running at the kill, plus queued jobs
# behind it on the single worker.
SLOW='{"preset":"K100","replicas":1,"seed":1,"config":{"tile_size":32,"global_iters":200000,"phi":0.2}}'
FAST='{"preset":"K100","replicas":1,"config":{"tile_size":32,"global_iters":20,"phi":0.2}}'
IDS=()
IDS+=("$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$SLOW" | grep -o '"id":"[^"]*"' | cut -d'"' -f4)")
for SEED in 2 3; do
  IDS+=("$(curl -sf -X POST "http://$ADDR/v1/jobs" \
    -d "$(echo "$FAST" | sed "s/\"replicas\":1,/\"replicas\":1,\"seed\":$SEED,/")" \
    | grep -o '"id":"[^"]*"' | cut -d'"' -f4)")
done
echo "WAL leg submitted jobs: ${IDS[*]}"

kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true
echo "killed daemon with SIGKILL, restarting over $WALDIR"

./bin/sophied -addr "$ADDR" -workers 2 -wal "$WALDIR" &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true; rm -rf "$WALDIR"' EXIT

for _ in $(seq 1 100); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null || { echo "restarted daemon never became healthy"; exit 1; }

# Every submitted job must be present and reach done: zero job loss.
for ID in "${IDS[@]}"; do
  STATE=""
  for _ in $(seq 1 600); do
    STATE=$(curl -sf "http://$ADDR/v1/jobs/$ID" | grep -o '"state":"[^"]*"' | head -1 | cut -d'"' -f4)
    [ "$STATE" = done ] && break
    if [ "$STATE" = failed ] || [ "$STATE" = cancelled ]; then
      echo "recovered job $ID ended $STATE"
      exit 1
    fi
    sleep 0.1
  done
  [ "$STATE" = done ] || { echo "job $ID lost or stuck after kill -9 (state: $STATE)"; exit 1; }
  echo "job $ID recovered and completed"
done

kill -TERM "$DAEMON"
if ! wait "$DAEMON"; then
  echo "daemon exited non-zero on SIGTERM after recovery"
  exit 1
fi
trap 'rm -rf "$WALDIR"' EXIT
echo "PASS: sophied smoke (incl. kill -9 recovery)"
