#!/usr/bin/env bash
# CI sparse-smoke: a 100,000-node random-regular (d=3) max-cut instance
# must complete a full sparse-built solve (graph generation, CSR model,
# solver, energy evaluation) inside wall-clock and peak-RSS budgets.
# The run is the env-gated arm of TestSparseBuiltScale in internal/core
# (SOPHIE_SPARSE_SMOKE=1 raises the instance from 10k to 100k nodes).
#
# Budgets are deliberately loose — the point is catching a accidental
# densification (an n² allocation at n=10⁵ is ~80 GB and would blow the
# RSS budget instantly) or a quadratic-time regression, not measuring
# steady-state performance; BENCH_PR7.json tracks that.
set -euo pipefail
cd "$(dirname "$0")/.."

WALL_BUDGET_S=${WALL_BUDGET_S:-300}
RSS_BUDGET_KB=${RSS_BUDGET_KB:-2097152} # 2 GiB

mkdir -p bin
# Compile outside the timed region so toolchain work is not billed to
# the solve.
go test -c -o bin/sparse_smoke.test ./internal/core

start=$(date +%s)
SOPHIE_SPARSE_SMOKE=1 ./bin/sparse_smoke.test \
  -test.run 'TestSparseBuiltScale' -test.v -test.timeout "${WALL_BUDGET_S}s" &
pid=$!

# Peak RSS via VmHWM: poll while the test runs. VmHWM is a high-water
# mark, so sampling every 100ms cannot miss the peak — only report it
# slightly late.
peak_kb=0
while kill -0 "$pid" 2>/dev/null; do
  if [[ -r "/proc/$pid/status" ]]; then
    kb=$(awk '/^VmHWM:/{print $2}' "/proc/$pid/status" 2>/dev/null || echo 0)
    if [[ -n "$kb" && "$kb" -gt "$peak_kb" ]]; then peak_kb=$kb; fi
  fi
  sleep 0.1
done
wait "$pid"
elapsed=$(( $(date +%s) - start ))

echo "sparse-smoke: 100k-node solve took ${elapsed}s (budget ${WALL_BUDGET_S}s), peak RSS ${peak_kb} kB (budget ${RSS_BUDGET_KB} kB)"
if (( elapsed > WALL_BUDGET_S )); then
  echo "sparse-smoke: wall-clock budget exceeded" >&2
  exit 1
fi
if (( peak_kb > RSS_BUDGET_KB )); then
  echo "sparse-smoke: peak RSS budget exceeded" >&2
  exit 1
fi
