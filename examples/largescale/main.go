// Large-scale study: the paper's headline scalability claim. A K16384
// problem cannot fit in one accelerator's OPCM capacity, so SOPHIE
// time-duplexes tile pairs over the PEs. This example walks the
// architecture model through 1, 2, and 4 accelerators (Table III) and
// prints the tile-size/batch EDAP tradeoff around the chosen design
// point (Fig. 9's neighborhood).
package main

import (
	"fmt"
	"log"

	"sophie"
)

func main() {
	fmt.Println("== Table III neighborhood: K16384 and K32768, batch 100, 74% tiles ==")
	fmt.Printf("%-8s %12s %12s\n", "#accel", "K16384/job", "K32768/job")
	for _, accels := range []int{1, 2, 4} {
		hw := sophie.DefaultHardware()
		hw.Accelerators = accels
		design := sophie.Design{Hardware: hw, Params: sophie.DefaultArchParams()}
		var cells []string
		for _, nodes := range []int{16384, 32768} {
			rep, err := sophie.EstimatePPA(design, sophie.Workload{
				Name: fmt.Sprintf("K%d", nodes), Nodes: nodes, Batch: 100,
				LocalIters: 10, GlobalIters: 50, TileFraction: 0.74,
			})
			if err != nil {
				log.Fatal(err)
			}
			cells = append(cells, fmt.Sprintf("%.2f µs", rep.TimePerJobS*1e6))
		}
		fmt.Printf("%-8d %12s %12s\n", accels, cells[0], cells[1])
	}
	fmt.Println("\npaper: 38.25/129.0 µs (1 accel), 20.40/68.80 µs (2), 9.69/32.34 µs (4)")
	fmt.Println("8-FPGA simulated bifurcation needs 1.21 ms for K16384; mBRIM3D 1.1 µs.")

	fmt.Println("\n== EDAP around the design point (K32768, 500 global iterations) ==")
	fmt.Printf("%-12s %10s %14s %14s %12s\n", "config", "EDAP", "energy/job", "time/job", "area")
	for _, cfg := range []struct {
		tile, batch int
	}{{64, 10}, {64, 100}, {64, 1000}, {32, 100}, {128, 100}} {
		hw := sophie.DefaultHardware()
		hw.TileSize = cfg.tile
		// Hold total OPCM cells constant when changing tile size.
		hw.PEsPerChiplet = 256 * 64 * 64 / (4 * cfg.tile * cfg.tile)
		design := sophie.Design{Hardware: hw, Params: sophie.DefaultArchParams()}
		rep, err := sophie.EstimatePPA(design, sophie.Workload{
			Name: "K32768", Nodes: 32768, Batch: cfg.batch,
			LocalIters: 10, GlobalIters: 500, TileFraction: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%-3d b=%-5d %10.3g %12.3g J %12.3g s %9.0f mm²\n",
			cfg.tile, cfg.batch, rep.EDAP, rep.EnergyPerJobJ, rep.TimePerJobS, rep.AreaMM2)
	}
	fmt.Println("\npaper: tile 64 / batch 100 minimizes EDAP (Fig. 9)")
}
