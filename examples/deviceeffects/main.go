// Device-effects ablation: run the same SOPHIE solve through the ideal
// float64 datapath and through the OPCM device model while sweeping the
// GST cell precision, the read noise, and injected stuck-cell faults —
// quantifying how much solution quality the analog hardware costs
// (Section III-C's device-level design choices).
package main

import (
	"fmt"
	"log"

	"sophie"
)

func main() {
	g, err := sophie.RandomGraph(400, 4000, sophie.WeightUnit, 99)
	if err != nil {
		log.Fatal(err)
	}
	model := sophie.MaxCut(g)
	fmt.Printf("instance: %d nodes, %d edges\n\n", g.N(), g.M())

	base := sophie.DefaultConfig()
	base.GlobalIters = 120
	base.Phi = 0.15

	solve := func(cfg sophie.Config) float64 {
		best := 0.0
		for seed := int64(0); seed < 3; seed++ {
			cfg.Seed = seed
			res, err := sophie.Solve(model, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if cut := g.CutValue(res.BestSpins); cut > best {
				best = cut
			}
		}
		return best
	}

	ideal := solve(base)
	fmt.Printf("%-40s %8.0f %8s\n", "ideal float64 datapath", ideal, "100.0%")

	report := func(name string, params sophie.DeviceParams) {
		cut := solve(sophie.WithDeviceModel(base, params))
		fmt.Printf("%-40s %8.0f %7.1f%%\n", name, cut, 100*cut/ideal)
	}

	// Cell precision sweep: the paper stores 6 bits per GST cell.
	for _, bits := range []int{6, 4, 2} {
		p := sophie.DefaultDeviceParams()
		p.CellBits = bits
		report(fmt.Sprintf("OPCM, %d-bit cells", bits), p)
	}

	// Read-noise sweep: the algorithm's φ already injects noise; device
	// read noise adds on top (the noise generator compensates in the
	// real design by injecting less).
	for _, rn := range []float64{0.01, 0.05} {
		p := sophie.DefaultDeviceParams()
		p.ReadNoise = rn
		report(fmt.Sprintf("OPCM, read noise %.0f%% of full scale", rn*100), p)
	}

	// Fault injection: stuck GST cells at random levels.
	for _, f := range []float64{0.001, 0.01, 0.05} {
		p := sophie.DefaultDeviceParams()
		p.StuckCellFraction = f
		p.Seed = 5
		report(fmt.Sprintf("OPCM, %.1f%% stuck cells", f*100), p)
	}

	// Amorphous GST drift: the stored weights decay logarithmically
	// between refreshes; reprogramming (which the time-duplexed flow
	// does anyway) resets it. We age the arrays as if they had sat
	// unrefreshed for the given time before the solve.
	for _, age := range []float64{1, 3600, 86400 * 30} {
		cfg := sophie.WithDriftDeviceModel(base, sophie.DefaultDeviceParams(), 0.015, 1e-3)
		cut := solveAged(model, g, cfg, age)
		fmt.Printf("%-40s %8.0f %7.1f%%\n",
			fmt.Sprintf("OPCM, drift after %s unrefreshed", fmtAge(age)), cut, 100*cut/ideal)
	}
}

// solveAged runs the solver after advancing the drift clock.
func solveAged(model *sophie.Model, g *sophie.Graph, cfg sophie.Config, age float64) float64 {
	best := 0.0
	for seed := int64(0); seed < 3; seed++ {
		cfg.Seed = seed
		solver, err := sophie.NewSolver(model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if drift, ok := solver.Engine().(interface{ Tick(float64) }); ok {
			drift.Tick(age)
		}
		res, err := solver.Run(seed)
		if err != nil {
			log.Fatal(err)
		}
		if cut := g.CutValue(res.BestSpins); cut > best {
			best = cut
		}
	}
	return best
}

func fmtAge(seconds float64) string {
	switch {
	case seconds < 60:
		return fmt.Sprintf("%.0f s", seconds)
	case seconds < 86400:
		return fmt.Sprintf("%.0f h", seconds/3600)
	default:
		return fmt.Sprintf("%.0f d", seconds/86400)
	}
}
