// Quickstart: solve max-cut on a small K-graph with SOPHIE's modified
// PRIS algorithm and print the cut found, next to a simulated annealing
// reference.
package main

import (
	"fmt"
	"log"

	"sophie"
)

func main() {
	// K100: the complete graph on 100 nodes with ±1 weights — the small
	// dense benchmark of the paper's Table II.
	g := sophie.KGraph(100)
	model := sophie.MaxCut(g)

	cfg := sophie.DefaultConfig() // tile 64, 10 local iters/global, α=0
	cfg.Phi = 0.2                 // the optimal noise depends on graph order/density (Fig. 6)
	cfg.GlobalIters = 100
	cfg.Seed = 42

	res, err := sophie.Solve(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SOPHIE: cut %.0f (energy %.0f) after %d global iterations\n",
		g.CutValue(res.BestSpins), res.BestEnergy, res.GlobalItersRun)

	// Reference: simulated annealing on the same model.
	sa, err := sophie.SimulatedAnnealing(model, sophie.DefaultSAConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SA:     cut %.0f (energy %.0f)\n", g.CutValue(sa.BestSpins), sa.BestEnergy)
}
