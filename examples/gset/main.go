// GSET benchmark study: run SOPHIE on the G1 stand-in (800 nodes, 19176
// edges) with the paper's optimal parameters (φ=0.2, α=0 for G1), and
// compare the solution quality against every baseline the repository
// implements — the software view of Table II.
//
// Pass -quick to shrink the instance and budgets for a fast demo.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sophie"
)

func main() {
	quick := flag.Bool("quick", false, "shrink instance and budgets")
	flag.Parse()

	g := sophie.G1()
	globalIters := 300
	saSweeps := 500
	blsMoves := 500000
	if *quick {
		var err error
		g, err = sophie.RandomGraph(200, 1200, sophie.WeightUnit, 53100)
		if err != nil {
			log.Fatal(err)
		}
		globalIters = 100
		saSweeps = 150
		blsMoves = 100000
	}
	fmt.Printf("instance: %d nodes, %d edges\n\n", g.N(), g.M())
	model := sophie.MaxCut(g)

	type row struct {
		name string
		cut  float64
		wall time.Duration
	}
	var rows []row
	timeIt := func(name string, f func() []int8) {
		start := time.Now()
		spins := f()
		rows = append(rows, row{name, g.CutValue(spins), time.Since(start)})
	}

	timeIt("SOPHIE (φ=0.2, α=0)", func() []int8 {
		cfg := sophie.DefaultConfig()
		cfg.Phi = 0.2 // the paper's optimum for G1
		cfg.GlobalIters = globalIters
		cfg.Seed = 7
		res, err := sophie.Solve(model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.BestSpins
	})
	timeIt("PRIS (reference)", func() []int8 {
		res, err := sophie.SolvePRIS(model, sophie.PRISConfig{
			Phi: 0.2, Alpha: 0, Iterations: globalIters * 10, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.BestSpins
	})
	timeIt("Simulated annealing", func() []int8 {
		cfg := sophie.DefaultSAConfig()
		cfg.Sweeps = saSweeps
		cfg.Seed = 7
		res, err := sophie.SimulatedAnnealing(model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.BestSpins
	})
	timeIt("Simulated bifurcation", func() []int8 {
		cfg := sophie.DefaultSBConfig()
		cfg.Seed = 7
		res, err := sophie.SimulatedBifurcation(model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.BestSpins
	})
	timeIt("BRIM (ODE sim)", func() []int8 {
		cfg := sophie.DefaultBRIMConfig()
		cfg.Seed = 7
		res, err := sophie.BRIM(model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.BestSpins
	})
	timeIt("BLS (local search)", func() []int8 {
		cfg := sophie.DefaultBLSConfig()
		cfg.MaxMoves = blsMoves
		cfg.Seed = 7
		res, err := sophie.BLS(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.BestSpins
	})

	best := 0.0
	for _, r := range rows {
		if r.cut > best {
			best = r.cut
		}
	}
	fmt.Printf("%-24s %10s %10s %8s\n", "solver", "cut", "vs best", "wall")
	for _, r := range rows {
		fmt.Printf("%-24s %10.0f %9.1f%% %8v\n", r.name, r.cut, 100*r.cut/best, r.wall.Round(time.Millisecond))
	}
}
