// Millionspin: solve max-cut on a 1,000,000-node random-regular graph
// through the sparse CSR datapath. The model is built straight in CSR
// (sophie.MaxCutSparse) — the dense coupling matrix at this order would
// be 8 TB, and is never materialized — and the solver runs the sparse
// engine with adjacency-list flip deltas, so a local iteration costs
// O(flips · degree) rather than O(n²).
//
// The same instance is solved twice: with the default block-synchronous
// recurrence, and with the colored parallel update
// (Config.ColoredUpdate) — chromatic Gauss-Seidel over the greedy
// coloring of the sparsity graph, bit-reproducible at any worker
// count. On very sparse graphs the synchronous recurrence is prone to
// antiferromagnetic oscillation (all spins react to all neighbors at
// once), so the colored update's fresh-neighbor sweeps find far better
// cuts at the same iteration budget — which is why the sparse Ising
// literature uses it.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sophie"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of spins (nodes)")
	degree := flag.Int("d", 3, "regular degree")
	flag.Parse()

	fmt.Printf("generating %d-node random %d-regular instance...\n", *n, *degree)
	start := time.Now()
	g, err := sophie.RandomRegularGraph(*n, *degree, sophie.WeightUnit, 1)
	if err != nil {
		log.Fatal(err)
	}
	model := sophie.MaxCutSparse(g) // CSR-built: no dense matrix, ever
	fmt.Printf("built in %v: %d edges\n",
		time.Since(start).Round(time.Millisecond), *n**degree/2)

	cfg := sophie.DefaultConfig()
	cfg.TileSize = *n        // single CSR tile spanning the instance
	cfg.SkipTransform = true // sparse-built models keep C = K
	cfg.GlobalIters = 20     // a short anneal; quality scales with budget
	cfg.LocalIters = 5
	cfg.Phi = 0.15
	cfg.EvalEvery = 5

	solve := func(label string, c sophie.Config) {
		start := time.Now()
		res, err := sophie.Solve(model, c)
		if err != nil {
			log.Fatal(err)
		}
		cut := g.CutValue(res.BestSpins)
		fmt.Printf("%-12s cut %.0f (%.1f%% of edges) in %v\n",
			label, cut, 100*cut/g.TotalWeight(),
			time.Since(start).Round(time.Millisecond))
	}
	solve("synchronous:", cfg)

	colored := cfg
	colored.ColoredUpdate = true
	solve("colored:", colored)
}
