// Combinatorial problems beyond max-cut: the paper's introduction
// motivates Ising machines with routing, scheduling, and circuit design
// workloads. This example reduces minimum vertex cover and graph
// k-coloring to QUBO (Lucas 2014), embeds the linear field with an
// ancilla spin, and solves both with the SOPHIE recurrence.
package main

import (
	"fmt"
	"log"

	"sophie"
)

func main() {
	solveVertexCover()
	solveColoring()
}

// runIsing solves an embedded QUBO on SOPHIE and returns the binary
// assignment of the first n variables, gauge-fixed so the ancilla reads
// +1. Candidates from several seeds are scored by their QUBO value
// (penalties included) and polished with a greedy single-flip descent —
// the standard readout pipeline for constraint problems on Ising
// machines.
func runIsing(q *sophie.QUBO, n int, cfg sophie.Config) []float64 {
	model, h, _ := q.ToIsing()
	big, err := sophie.EmbedField(model, h)
	if err != nil {
		log.Fatal(err)
	}
	var bestX []float64
	bestV := 0.0
	first := true
	for seed := int64(0); seed < 8; seed++ {
		cfg.Seed = seed
		res, err := sophie.Solve(big, cfg)
		if err != nil {
			log.Fatal(err)
		}
		spins := res.BestSpins
		// Gauge: a global flip leaves the energy invariant; orient the
		// ancilla up.
		if spins[len(spins)-1] == -1 {
			for i := range spins {
				spins[i] = -spins[i]
			}
		}
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			if spins[i] == 1 {
				x[i] = 1
			}
		}
		greedyDescent(q, x)
		if v := q.Value(x); first || v < bestV {
			bestV = v
			bestX = x
			first = false
		}
	}
	return bestX
}

// greedyDescent applies single- and pair-flip moves while any lowers
// the QUBO value. Pair flips matter for one-hot encodings (coloring,
// TSP), where swapping a color is two coupled flips that no single flip
// can improve through.
func greedyDescent(q *sophie.QUBO, x []float64) {
	for improved := true; improved; {
		improved = false
		for i := range x {
			before := q.Value(x)
			x[i] = 1 - x[i]
			if q.Value(x) < before {
				improved = true
			} else {
				x[i] = 1 - x[i]
			}
		}
		for i := range x {
			for j := i + 1; j < len(x); j++ {
				before := q.Value(x)
				x[i], x[j] = 1-x[i], 1-x[j]
				if q.Value(x) < before {
					improved = true
				} else {
					x[i], x[j] = 1-x[i], 1-x[j]
				}
			}
		}
	}
}

func solverConfig() sophie.Config {
	cfg := sophie.DefaultConfig()
	cfg.TileSize = 16
	cfg.GlobalIters = 400
	cfg.Phi = 0.8
	cfg.PhiEnd = 0.02 // anneal the noise: explore, then settle
	return cfg
}

func solveVertexCover() {
	// A ring of 8 nodes plus two chords; minimum cover has 4 nodes.
	g := sophie.NewGraph(8)
	for i := 0; i < 8; i++ {
		if err := g.AddEdge(i, (i+1)%8, 1); err != nil {
			log.Fatal(err)
		}
	}
	g.AddEdge(0, 4, 1)
	g.AddEdge(2, 6, 1)

	q, err := sophie.VertexCoverQUBO(g, 3)
	if err != nil {
		log.Fatal(err)
	}
	x := runIsing(q, g.N(), solverConfig())
	cover := sophie.DecodeVertexCover(x)
	fmt.Printf("vertex cover: %v (size %d, valid=%v)\n", cover, len(cover), sophie.IsVertexCover(g, cover))

	// Exact reference via exhaustive enumeration (8 variables).
	xr, _, err := sophie.SolveQUBOExhaustive(q)
	if err != nil {
		log.Fatal(err)
	}
	ref := sophie.DecodeVertexCover(xr)
	fmt.Printf("optimal cover size: %d\n\n", len(ref))
}

func solveColoring() {
	// A 5-cycle needs 3 colors.
	g := sophie.NewGraph(5)
	for i := 0; i < 5; i++ {
		if err := g.AddEdge(i, (i+1)%5, 1); err != nil {
			log.Fatal(err)
		}
	}
	const colors = 3
	q, err := sophie.ColoringQUBO(g, colors, 2)
	if err != nil {
		log.Fatal(err)
	}
	x := runIsing(q, g.N()*colors, solverConfig())
	coloring := sophie.DecodeColoring(x, g.N(), colors)
	fmt.Printf("5-cycle %d-coloring: %v (proper=%v)\n", colors, coloring, sophie.IsProperColoring(g, coloring))
}
