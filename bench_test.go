package sophie_test

// One benchmark per table and figure of the paper's evaluation
// (Section IV). Each bench runs a miniaturized version of its
// experiment — small instances and few iterations so `go test -bench=.`
// completes quickly — and attaches the experiment's key metric via
// b.ReportMetric. The full-scale regeneration lives in
// cmd/experiments (see EXPERIMENTS.md for recorded paper-vs-measured).

import (
	"testing"

	"sophie"
	"sophie/internal/arch"
	"sophie/internal/core"
	"sophie/internal/experiments"
	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/sched"
)

// benchGraph is the shared miniature instance: a Rudy random graph with
// G22-like density at 1/16 the order.
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := graph.Random(125, 650, graph.WeightUnit, 53122)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchSolver(b *testing.B, mutate func(*core.Config)) *core.Solver {
	b.Helper()
	g := benchGraph(b)
	cfg := core.DefaultConfig()
	cfg.TileSize = 32
	cfg.GlobalIters = 30
	cfg.Phi = 0.2
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.NewSolver(ising.FromMaxCut(g), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable1Graphs regenerates Table I's instances (the small ones
// materialized, the large ones described analytically).
func BenchmarkTable1Graphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, inst := range graph.TableI() {
			if inst.Nodes <= 800 {
				g := inst.Build()
				if g.N() != inst.Nodes {
					b.Fatal("bad instance")
				}
			}
		}
	}
}

// BenchmarkFig6QualitySweep sweeps (φ, α) on the miniature instance —
// Fig. 6's quality surface.
func BenchmarkFig6QualitySweep(b *testing.B) {
	g := benchGraph(b)
	model := ising.FromMaxCut(g)
	bestCut := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0, 0.1} {
			cfg := core.DefaultConfig()
			cfg.TileSize = 32
			cfg.GlobalIters = 20
			cfg.Alpha = alpha
			s, err := core.NewSolver(model, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, phi := range []float64{0.1, 0.2} {
				tuned, err := s.WithRuntime(func(c *core.Config) { c.Phi = phi })
				if err != nil {
					b.Fatal(err)
				}
				res, err := tuned.Run(int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if cut := g.CutValue(res.BestSpins); cut > bestCut {
					bestCut = cut
				}
			}
		}
	}
	b.ReportMetric(bestCut, "best-cut")
}

// BenchmarkFig7StochasticTiles sweeps (local iters per global, tile
// fraction) at a fixed local-iteration budget — Fig. 7's quality grid.
func BenchmarkFig7StochasticTiles(b *testing.B) {
	g := benchGraph(b)
	s := benchSolver(b, nil)
	worst := 1.0
	var ref float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		const budget = 300
		ref = 0
		cuts := map[[2]int]float64{}
		for li, L := range []int{1, 10} {
			for fi, frac := range []float64{0.5, 1.0} {
				tuned, err := s.WithRuntime(func(c *core.Config) {
					c.LocalIters = L
					c.GlobalIters = budget / L
					c.TileFraction = frac
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := tuned.Run(int64(i))
				if err != nil {
					b.Fatal(err)
				}
				cut := g.CutValue(res.BestSpins)
				cuts[[2]int{li, fi}] = cut
				if cut > ref {
					ref = cut
				}
			}
		}
		for _, c := range cuts {
			if r := c / ref; r < worst {
				worst = r
			}
		}
	}
	b.ReportMetric(100*worst, "worst-vs-best-%")
}

// BenchmarkFig8IterationsToTarget measures total local iterations to a
// 95%-of-reference cut — Fig. 8's convergence grid.
func BenchmarkFig8IterationsToTarget(b *testing.B) {
	g := benchGraph(b)
	// Reference from a quick BLS run.
	ref, err := sophie.BLS(g, sophie.BLSConfig{MaxMoves: 50000, PerturbBase: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	target := g.TotalWeight() - 2*0.95*ref.BestCut
	s := benchSolver(b, func(c *core.Config) {
		c.GlobalIters = 100
		c.TargetEnergy = &target
	})
	total := 0.0
	runs := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Run(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.ReachedTarget {
			total += float64(res.TotalLocalIters)
			runs++
		}
	}
	if runs > 0 {
		b.ReportMetric(total/runs, "local-iters-to-95%")
	}
}

// BenchmarkFig9EDAP evaluates the analytic EDAP surface over the
// (tile, batch) grid — Fig. 9.
func BenchmarkFig9EDAP(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		best = 0
		for _, tile := range []int{16, 32, 64, 128, 256} {
			for _, batch := range []int{1, 10, 100, 1000} {
				pes := 256 * 64 * 64 / (4 * tile * tile)
				d := arch.Design{
					Hardware: sched.Hardware{Accelerators: 1, ChipletsPerAccel: 4, PEsPerChiplet: pes, TileSize: tile},
					Params:   arch.DefaultParams(),
				}
				rep, err := arch.Evaluate(d, arch.Workload{
					Nodes: 32768, Batch: batch, LocalIters: 10, GlobalIters: 500, TileFraction: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if best == 0 || rep.EDAP < best {
					best = rep.EDAP
				}
			}
		}
	}
	b.ReportMetric(best, "min-EDAP")
}

// BenchmarkFig10Runtime couples the functional simulator's iterations-
// to-target with the capacity-limited timing model — Fig. 10.
func BenchmarkFig10Runtime(b *testing.B) {
	g := benchGraph(b)
	ref, err := sophie.BLS(g, sophie.BLSConfig{MaxMoves: 50000, PerturbBase: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	target := g.TotalWeight() - 2*0.9*ref.BestCut
	s := benchSolver(b, func(c *core.Config) {
		c.GlobalIters = 100
		c.TargetEnergy = &target
		c.TileFraction = 0.74
	})
	hw := sched.Hardware{Accelerators: 1, ChipletsPerAccel: 4, PEsPerChiplet: 16, TileSize: 32}
	design := arch.Design{Hardware: hw, Params: arch.DefaultParams()}
	var perJob float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Run(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		iters := res.GlobalItersRun
		if iters == 0 {
			iters = 1
		}
		rep, err := arch.Evaluate(design, arch.Workload{
			Nodes: g.N(), Batch: 100, LocalIters: 10, GlobalIters: iters, TileFraction: 0.74,
		})
		if err != nil {
			b.Fatal(err)
		}
		perJob = rep.TimePerJobS
	}
	b.ReportMetric(perJob*1e6, "µs/job")
}

// BenchmarkTable2SmallGraphs runs the resident small-graph flow: solve
// K100 functionally, then price it on 4 accelerators — Table II's
// SOPHIE row.
func BenchmarkTable2SmallGraphs(b *testing.B) {
	g := graph.KGraph(100)
	model := ising.FromMaxCut(g)
	cfg := core.DefaultConfig()
	cfg.GlobalIters = 50
	cfg.Phi = 0.2
	s, err := core.NewSolver(model, cfg)
	if err != nil {
		b.Fatal(err)
	}
	hw := sched.DefaultHardware()
	hw.Accelerators = 4
	design := arch.Design{Hardware: hw, Params: arch.DefaultParams()}
	var perJob float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Run(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := arch.Evaluate(design, arch.Workload{
			Nodes: 100, Batch: 100, LocalIters: 10,
			GlobalIters: maxInt(res.BestGlobalIter, 1), TileFraction: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		perJob = rep.TimePerJobS
	}
	b.ReportMetric(perJob*1e6, "µs/job")
}

// BenchmarkTable3LargeGraphs evaluates the time-duplexed large-graph
// timing for K16384/K32768 across accelerator counts — Table III.
func BenchmarkTable3LargeGraphs(b *testing.B) {
	var t1 float64
	for i := 0; i < b.N; i++ {
		for _, accels := range []int{1, 2, 4} {
			hw := sched.DefaultHardware()
			hw.Accelerators = accels
			design := arch.Design{Hardware: hw, Params: arch.DefaultParams()}
			for _, nodes := range []int{16384, 32768} {
				rep, err := arch.Evaluate(design, arch.Workload{
					Nodes: nodes, Batch: 100, LocalIters: 10, GlobalIters: 50, TileFraction: 0.74,
				})
				if err != nil {
					b.Fatal(err)
				}
				if accels == 1 && nodes == 16384 {
					t1 = rep.TimePerJobS
				}
			}
		}
	}
	b.ReportMetric(t1*1e6, "K16384-1accel-µs/job")
}

// BenchmarkExperimentFig9Harness exercises the full experiment harness
// path (registry → render) for the cheapest experiment.
func BenchmarkExperimentFig9Harness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig9(experiments.Options{Runs: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func maxInt(a, c int) int {
	if a > c {
		return a
	}
	return c
}
