# SOPHIE simulator build/test/lint entry points. CI (.github/workflows/ci.yml)
# runs the same targets, so `make check` locally reproduces the gate.

GO ?= go
BIN := bin

.PHONY: all build test race lint vet bench bench-json smoke check clean

all: build

build:
	mkdir -p $(BIN)
	$(GO) build -o $(BIN)/ ./cmd/...

test:
	$(GO) test ./...

# The heavy experiment smoke skips itself under -race (see
# internal/experiments/race_on_test.go); -timeout gives the remaining
# raced smokes headroom on slow machines.
race:
	$(GO) test -race -timeout 20m ./...

# The sophielint suite encodes the simulator's invariants (DESIGN.md
# "Invariants"): no global RNG, seed plumbing on entry points, no float
# ==, checked unsigned op-count conversions, trace-owned counter
# writes, plus the concurrency contracts — cancellable blocking entry
# points (ctxflow), lock discipline (lockcheck), and goroutine
# ownership (goleak). It runs standalone here; CI's dedicated `lint`
# job additionally drives it through `go vet -vettool` to prove the vet
# protocol keeps working.
lint: build
	$(BIN)/sophielint ./...

vet: build
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/$(BIN)/sophielint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Regenerates the tracked benchmark baseline (README.md "Benchmarks").
# BENCHTIME=1x gives a fast smoke; the committed BENCH_PR10.json was
# produced with the default 2s budget. It carries the trace-spine
# overhead guard (derived trace_overhead), the per-phase attribution of
# one instrumented solve, the lint wall-time pair (derived
# lint_shared9_over_isolated6), the sparse-datapath pair plus the
# random-regular scaling arm up to one million nodes (derived
# sparse_over_dense_speedup and sparse_scale_1m_over_10k), the
# per-tile-order crossover-margin pair (derived
# sparse_crossover_margin_tile{64,256}), and the
# tempering-vs-portfolio time-to-target pair (derived
# tempering_over_portfolio).
BENCHTIME ?= 2s
bench-json:
	$(GO) run ./cmd/sophiebench -benchtime $(BENCHTIME) -o BENCH_PR10.json

# End-to-end daemon smoke: real sophied + sophie binaries over HTTP
# (CI job "sophied-smoke").
smoke:
	./scripts/sophied_smoke.sh

check: build test race lint vet smoke

clean:
	rm -rf $(BIN)
