module sophie

go 1.22
