package sophie_test

import (
	"bytes"
	"testing"

	"sophie"
)

// These tests exercise the public facade end to end, the way a
// downstream user would.

func TestFacadeQuickstart(t *testing.T) {
	g := sophie.KGraph(100)
	cfg := sophie.DefaultConfig()
	cfg.GlobalIters = 40
	cfg.Seed = 1
	res, err := sophie.Solve(sophie.MaxCut(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := g.CutValue(res.BestSpins)
	// K100 with ±1 weights: random cuts average ~0; the solver must find
	// a clearly positive cut.
	if cut <= 100 {
		t.Fatalf("K100 cut %v too weak", cut)
	}
}

func TestFacadeGraphRoundTrip(t *testing.T) {
	g, err := sophie.RandomGraph(30, 60, sophie.WeightPM1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sophie.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := sophie.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 30 || back.M() != 60 {
		t.Fatal("facade graph I/O round trip failed")
	}
}

func TestFacadeStandins(t *testing.T) {
	if sophie.G1().N() != 800 || sophie.G22().N() != 2000 {
		t.Fatal("stand-in shapes wrong")
	}
}

func TestFacadeDeviceModel(t *testing.T) {
	g, _ := sophie.RandomGraph(80, 400, sophie.WeightUnit, 4)
	cfg := sophie.DefaultConfig()
	cfg.TileSize = 32
	cfg.GlobalIters = 40
	cfg = sophie.WithDeviceModel(cfg, sophie.DefaultDeviceParams())
	res, err := sophie.Solve(sophie.MaxCut(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.CutValue(res.BestSpins) < 0.5*float64(g.M()) {
		t.Fatal("device-model solve too weak")
	}
}

func TestFacadePRISAndBaselines(t *testing.T) {
	g, _ := sophie.RandomGraph(60, 240, sophie.WeightUnit, 5)
	m := sophie.MaxCut(g)

	if _, err := sophie.SolvePRIS(m, sophie.PRISConfig{Phi: 0.15, Iterations: 100, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	sa := sophie.DefaultSAConfig()
	sa.Sweeps = 100
	if _, err := sophie.SimulatedAnnealing(m, sa); err != nil {
		t.Fatal(err)
	}
	sb := sophie.DefaultSBConfig()
	sb.Steps = 100
	if _, err := sophie.SimulatedBifurcation(m, sb); err != nil {
		t.Fatal(err)
	}
	brim := sophie.DefaultBRIMConfig()
	brim.Steps = 100
	if _, err := sophie.BRIM(m, brim); err != nil {
		t.Fatal(err)
	}
	bls := sophie.DefaultBLSConfig()
	bls.MaxMoves = 5000
	if _, err := sophie.BLS(g, bls); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePPA(t *testing.T) {
	rep, err := sophie.EstimatePPA(sophie.DefaultDesign(), sophie.Workload{
		Name: "K16384", Nodes: 16384, Batch: 100,
		LocalIters: 10, GlobalIters: 50, TileFraction: 0.74,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TimePerJobS <= 0 || rep.EnergyPerJobJ <= 0 || rep.AreaMM2 <= 0 || rep.EDAP <= 0 {
		t.Fatalf("PPA report not positive: %+v", rep)
	}
}

func TestFacadeNumberPartition(t *testing.T) {
	nums := []float64{5, 4, 3, 2, 1, 1}
	m := sophie.NumberPartition(nums)
	cfg := sophie.DefaultConfig()
	cfg.TileSize = 8
	cfg.GlobalIters = 80
	cfg.Phi = 0.3
	// Keep the eigenvalue-dropout transform: the raw coupling matrix of
	// number partitioning is fully antiferromagnetic and the synchronous
	// recurrence oscillates without it.
	// The recurrence is stochastic; take the best of a few seeds, as the
	// batched hardware does.
	best := 1e18
	for seed := int64(0); seed < 4; seed++ {
		cfg.Seed = seed
		res, err := sophie.Solve(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if im := sophie.PartitionImbalance(nums, res.BestSpins); im < best {
			best = im
		}
	}
	// Total is 16; a perfect split exists. Accept near-perfect.
	if best > 2 {
		t.Fatalf("imbalance %v too large", best)
	}
}

func TestFacadeParallelTempering(t *testing.T) {
	g, _ := sophie.RandomGraph(50, 200, sophie.WeightUnit, 10)
	cfg := sophie.DefaultPTConfig()
	cfg.Sweeps = 80
	res, err := sophie.ParallelTempering(sophie.MaxCut(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.CutValue(res.BestSpins) < 0.55*float64(g.M()) {
		t.Fatal("PT via facade too weak")
	}
}

func TestFacadeCoreTempering(t *testing.T) {
	g, _ := sophie.RandomGraph(48, 200, sophie.WeightUnit, 12)
	cfg := sophie.DefaultConfig()
	cfg.TileSize = 16
	cfg.GlobalIters = 30
	s, err := sophie.NewSolver(sophie.MaxCut(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := sophie.SeedRange(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.RunTempering(seeds, sophie.TemperingOptions{TMin: 0.05, TMax: 0.5, ExchangeEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	var stats *sophie.TemperingStats = batch.Tempering
	if stats == nil || len(stats.Phis) != 4 {
		t.Fatalf("tempering stats missing or mis-sized: %+v", stats)
	}
	if g.CutValue(batch.Best().BestSpins) < 0.55*float64(g.M()) {
		t.Fatal("core tempering via facade too weak")
	}
}

func TestFacadeDriftDeviceModel(t *testing.T) {
	g, _ := sophie.RandomGraph(60, 240, sophie.WeightUnit, 11)
	cfg := sophie.DefaultConfig()
	cfg.TileSize = 32
	cfg.GlobalIters = 25
	cfg = sophie.WithDriftDeviceModel(cfg, sophie.DefaultDeviceParams(), 0.01, 1e-3)
	res, err := sophie.Solve(sophie.MaxCut(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.CutValue(res.BestSpins) <= 0 {
		t.Fatal("drift-engine solve failed")
	}
}

func TestFacadeTimeToSolution(t *testing.T) {
	tts, err := sophie.TimeToSolution(1e-6, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if tts <= 1e-6 {
		t.Fatal("TTS must exceed one run time for p<0.9")
	}
}

func TestFacadeMatrixAndTSP(t *testing.T) {
	d := sophie.NewMatrix(3, 3)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	d.Set(1, 2, 2)
	d.Set(2, 1, 2)
	d.Set(0, 2, 2)
	d.Set(2, 0, 2)
	q, err := sophie.TSPQUBO(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := sophie.SolveQUBOExhaustive(q)
	if err != nil {
		t.Fatal(err)
	}
	tour, err := sophie.DecodeTour(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sophie.TourLength(d, tour) != 5 {
		t.Fatalf("3-city tour length %v, want 5", sophie.TourLength(d, tour))
	}
}

func TestFacadeSolveAndEstimate(t *testing.T) {
	g := sophie.KGraph(100)
	cfg := sophie.DefaultConfig()
	cfg.GlobalIters = 20
	cfg.Phi = 0.2
	d := sophie.DefaultDesign()
	res, rep, err := sophie.SolveAndEstimate(sophie.MaxCut(g), cfg, d, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalItersRun != 20 || rep.TimePerJobS <= 0 {
		t.Fatalf("co-simulation inconsistent: %d iters, %v s/job", res.GlobalItersRun, rep.TimePerJobS)
	}
	// Tile-size mismatch must be rejected.
	bad := d
	bad.Hardware.TileSize = 32
	if _, _, err := sophie.SolveAndEstimate(sophie.MaxCut(g), cfg, bad, 100); err == nil {
		t.Fatal("tile mismatch must error")
	}
}
