package sophie_test

// End-to-end integration tests spanning the full stack: functional
// solver → scheduling → architecture model → device model, the way the
// experiment harness composes them.

import (
	"math"
	"testing"

	"sophie"
	"sophie/internal/arch"
	"sophie/internal/baseline"
	"sophie/internal/core"
	"sophie/internal/graph"
	"sophie/internal/ising"
	"sophie/internal/opcm"
	"sophie/internal/pris"
	"sophie/internal/sched"
	"sophie/internal/tiling"
)

// TestEndToEndSmallGraphPipeline mirrors the Table II flow: functional
// convergence on a small instance, priced by the architecture model,
// with feasibility checks.
func TestEndToEndSmallGraphPipeline(t *testing.T) {
	g, err := graph.Random(200, 1200, graph.WeightUnit, 53100)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)

	// Reference via BLS.
	ref, err := baseline.BLS(g, baseline.BLSConfig{MaxMoves: 150000, PerturbBase: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := g.TotalWeight() - 2*0.95*ref.BestCut

	cfg := core.DefaultConfig()
	cfg.Phi = 0.2
	cfg.GlobalIters = 200
	cfg.TargetEnergy = &target
	solver, err := core.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget {
		t.Fatalf("did not reach 95%% of BLS reference %v (best %v)", ref.BestCut, g.CutValue(res.BestSpins))
	}

	hw := sched.DefaultHardware()
	design := arch.Design{Hardware: hw, Params: arch.DefaultParams()}
	rep, err := arch.Evaluate(design, arch.Workload{
		Name: "G1-mini", Nodes: g.N(), Batch: 100,
		LocalIters: cfg.LocalIters, GlobalIters: res.GlobalItersRun, TileFraction: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Schedule.Resident {
		t.Fatal("200-node instance must be resident on one accelerator")
	}
	if rep.TimePerJobS <= 0 || rep.TimePerJobS > 1e-3 {
		t.Fatalf("per-job time %v implausible", rep.TimePerJobS)
	}
	if _, err := arch.CheckFeasibility(rep); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndCapacityLimitedDiscreteTiming cross-checks the analytic
// and discrete timing paths on the Fig. 10 setup.
func TestEndToEndCapacityLimitedDiscreteTiming(t *testing.T) {
	hw := sched.Hardware{Accelerators: 1, ChipletsPerAccel: 4, PEsPerChiplet: 16, TileSize: 64}
	design := arch.Design{Hardware: hw, Params: arch.DefaultParams()}
	w := arch.Workload{Nodes: 2000, Batch: 100, LocalIters: 10, GlobalIters: 25, TileFraction: 0.74}

	grid, err := tiling.NewGrid(w.Nodes, hw.TileSize)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.Generate(grid, hw, sched.Options{
		GlobalIters: w.GlobalIters, TileFraction: w.TileFraction, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := arch.SimulatePlan(design, plan, w)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := arch.Evaluate(design, w)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sim.TimePerJobS / ana.TimePerJobS
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("discrete/analytic timing ratio %.2f outside [0.7,1.3]", ratio)
	}
	// The communication schedule's payload must match what the analytic
	// model assumes per iteration (within the 1-bit packing rounding).
	ops, err := plan.CommSchedule(0, w.Batch)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes := float64(sched.TotalBytes(ops))
	wantBytes := float64(plan.Grid.TileSize) * 4.5 * float64(w.Batch) * float64(len(plan.Iterations[0].Selected))
	if math.Abs(gotBytes-wantBytes)/wantBytes > 0.05 {
		t.Fatalf("comm schedule bytes %v vs analytic %v", gotBytes, wantBytes)
	}
}

// TestEndToEndSparseRankPipeline runs the scalable preprocessing path:
// sparse coupling → Lanczos rank transform → PRIS solve.
func TestEndToEndSparseRankPipeline(t *testing.T) {
	g, err := graph.Random(300, 3000, graph.WeightUnit, 77)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	tr, err := pris.NewTransformRankSparse(g.CouplingCSR(), 0, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pris.SolveWithTransform(m, tr, pris.Config{Phi: 0.2, Alpha: 0, Iterations: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cut := g.CutValue(res.BestSpins); cut < 0.6*float64(g.M()) {
		t.Fatalf("sparse-rank pipeline cut %v too weak", cut)
	}
}

// TestEndToEndDriftRefreshCycle runs the solver through the drift
// engine, ages it, refreshes, and verifies the refreshed device matches
// fresh behavior.
func TestEndToEndDriftRefreshCycle(t *testing.T) {
	g, err := graph.Random(100, 600, graph.WeightUnit, 31)
	if err != nil {
		t.Fatal(err)
	}
	m := ising.FromMaxCut(g)
	cfg := core.DefaultConfig()
	cfg.TileSize = 32
	cfg.GlobalIters = 40
	cfg.Phi = 0.15
	cfg = sophie.WithDriftDeviceModel(cfg, opcm.DefaultParams(), 0.02, 1e-6)
	solver, err := core.NewSolver(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	drift, ok := solver.Engine().(*opcm.DriftEngine)
	if !ok {
		t.Fatal("engine is not a DriftEngine")
	}
	fresh, err := solver.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	drift.Tick(86400 * 365) // one unrefreshed year
	if drift.MaxDriftError() <= 0 {
		t.Fatal("a year of drift must register")
	}
	aged, err := solver.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	if err := drift.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	refreshed, err := solver.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed.BestEnergy != fresh.BestEnergy {
		t.Fatalf("refresh did not restore fresh behavior: %v vs %v", refreshed.BestEnergy, fresh.BestEnergy)
	}
	// Aged run still produces a usable (if possibly weaker) answer.
	if g.CutValue(aged.BestSpins) < 0.4*float64(g.M()) {
		t.Fatal("aged device collapsed entirely")
	}
}

// TestEndToEndQUBOOnSOPHIE solves a vertex-cover QUBO through the full
// embed → solve → decode pipeline with a noise-annealed schedule.
func TestEndToEndQUBOOnSOPHIE(t *testing.T) {
	g := sophie.NewGraph(6)
	for i := 0; i < 6; i++ {
		if err := g.AddEdge(i, (i+1)%6, 1); err != nil {
			t.Fatal(err)
		}
	}
	q, err := sophie.VertexCoverQUBO(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	model, h, _ := q.ToIsing()
	big, err := sophie.EmbedField(model, h)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sophie.DefaultConfig()
	cfg.TileSize = 8
	cfg.GlobalIters = 200
	cfg.Phi = 0.6
	cfg.PhiEnd = 0.05
	found := false
	for seed := int64(0); seed < 6 && !found; seed++ {
		cfg.Seed = seed
		res, err := sophie.Solve(big, cfg)
		if err != nil {
			t.Fatal(err)
		}
		spins := res.BestSpins
		if spins[len(spins)-1] == -1 {
			for i := range spins {
				spins[i] = -spins[i]
			}
		}
		x := make([]float64, 6)
		for i := 0; i < 6; i++ {
			if spins[i] == 1 {
				x[i] = 1
			}
		}
		cover := sophie.DecodeVertexCover(x)
		if sophie.IsVertexCover(g, cover) && len(cover) == 3 {
			found = true // 6-cycle minimum cover is 3
		}
	}
	if !found {
		t.Fatal("no seed found the minimum vertex cover of a 6-cycle")
	}
}
